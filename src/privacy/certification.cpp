#include "privacy/certification.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/stats.h"
#include "util/statistics.h"

namespace mobipriv::privacy {
namespace {

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return util::PercentileSorted(values, 0.5);
}

const char* KindName(CertificationViolation::Kind kind) {
  switch (kind) {
    case CertificationViolation::Kind::kNonUniformSpacing:
      return "non-uniform spacing";
    case CertificationViolation::Kind::kNonUniformInterval:
      return "non-uniform interval";
    case CertificationViolation::Kind::kResidualStay:
      return "residual stay";
    case CertificationViolation::Kind::kUnorderedTimestamps:
      return "unordered timestamps";
  }
  return "?";
}

}  // namespace

std::string CertificationViolation::ToString() const {
  std::ostringstream os;
  os << KindName(kind) << " in trace " << trace_index << " (user " << user
     << "), magnitude " << magnitude;
  return os.str();
}

std::string CertificationReport::ToString() const {
  std::ostringstream os;
  os << (Certified() ? "CERTIFIED" : "REJECTED") << ": checked "
     << traces_checked << " traces (" << traces_exempt << " exempt), "
     << violations.size() << " violation(s)";
  for (std::size_t i = 0; i < std::min<std::size_t>(violations.size(), 10);
       ++i) {
    os << "\n  " << violations[i].ToString();
  }
  if (violations.size() > 10) {
    os << "\n  ... and " << violations.size() - 10 << " more";
  }
  return os.str();
}

CertificationReport CertifyConstantSpeed(const model::Dataset& published,
                                         const CertificationConfig& config) {
  CertificationReport report;
  const attacks::PoiExtractor screener(config.screening);
  const auto projection = attacks::DatasetProjection(published);

  for (std::size_t i = 0; i < published.traces().size(); ++i) {
    const auto& trace = published.traces()[i];
    if (!trace.IsTimeOrdered()) {
      report.violations.push_back(
          {CertificationViolation::Kind::kUnorderedTimestamps, i,
           trace.user(), 0.0});
      ++report.traces_checked;
      continue;
    }
    if (trace.size() < config.min_events_checked) {
      ++report.traces_exempt;
      continue;
    }
    ++report.traces_checked;

    // Spacing uniformity relative to the trace's own median spacing.
    const auto distances = model::InterEventDistances(trace);
    const double median_spacing = Median(distances);
    if (median_spacing > 0.0) {
      double worst = 0.0;
      for (const double d : distances) {
        worst = std::max(worst,
                         std::abs(d - median_spacing) / median_spacing);
      }
      if (worst > config.max_spacing_deviation) {
        report.violations.push_back(
            {CertificationViolation::Kind::kNonUniformSpacing, i,
             trace.user(), worst});
      }
    }

    // Interval uniformity (absolute seconds, covers rounding).
    const auto intervals = model::InterEventIntervals(trace);
    const double median_interval = Median(intervals);
    double worst_interval = 0.0;
    for (const double dt : intervals) {
      worst_interval = std::max(worst_interval,
                                std::abs(dt - median_interval));
    }
    if (worst_interval > config.max_interval_deviation_s) {
      report.violations.push_back(
          {CertificationViolation::Kind::kNonUniformInterval, i,
           trace.user(), worst_interval});
    }

    // Negative screening: no residual stop clusters.
    for (const auto& stay : screener.ExtractStays(trace, projection)) {
      report.violations.push_back(
          {CertificationViolation::Kind::kResidualStay, i, trace.user(),
           static_cast<double>(stay.departure - stay.arrival)});
    }
  }
  return report;
}

}  // namespace mobipriv::privacy
