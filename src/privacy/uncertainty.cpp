#include "privacy/uncertainty.h"

#include <cmath>
#include <sstream>

#include "util/string_utils.h"

namespace mobipriv::privacy {

double AnonymitySetEntropyBits(std::size_t set_size) noexcept {
  if (set_size < 2) return 0.0;
  return std::log2(static_cast<double>(set_size));
}

std::string UncertaintyReport::ToString() const {
  std::ostringstream os;
  os << "occurrences=" << occurrences
     << " total_bits=" << util::FormatDouble(total_bits, 2)
     << " mean_bits/occurrence="
     << util::FormatDouble(mean_bits_per_occurrence, 2);
  std::size_t protected_users = 0;
  for (const auto& u : per_user) {
    if (u.traversals > 0) ++protected_users;
  }
  os << " users_with_mixing=" << protected_users << "/" << per_user.size();
  return os.str();
}

UncertaintyReport MeasureMixingUncertainty(
    const model::Dataset& dataset, const mech::MixZoneReport& report) {
  UncertaintyReport out;
  std::map<model::UserId, UserUncertainty> per_user;
  for (model::UserId id = 0; id < dataset.UserCount(); ++id) {
    per_user[id] = UserUncertainty{id, 0, 0.0};
  }
  for (const auto& occurrence : report.occurrence_details) {
    const double bits = AnonymitySetEntropyBits(occurrence.users.size());
    out.total_bits += bits;
    ++out.occurrences;
    for (const model::UserId user : occurrence.users) {
      auto& entry = per_user[user];
      entry.user = user;
      ++entry.traversals;
      entry.cumulative_bits += bits;
    }
  }
  if (out.occurrences > 0) {
    out.mean_bits_per_occurrence =
        out.total_bits / static_cast<double>(out.occurrences);
  }
  out.per_user.reserve(per_user.size());
  for (auto& [id, entry] : per_user) out.per_user.push_back(entry);
  return out;
}

}  // namespace mobipriv::privacy
