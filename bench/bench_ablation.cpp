// E9 (ablations) — the design choices DESIGN.md §4 calls out, each isolated:
//
//  A. chord-stepping vs naive arc-length resampling in stage 1. Arc-length
//     resampling follows the GPS-jitter wiggles a dwell accumulates
//     (kilometres of polyline inside one POI disc), so stops survive; chord
//     stepping absorbs them. This ablation is the reason the mechanism
//     works at all on real GPS noise.
//  B. trailing-remainder trimming (exact constant speed) vs keeping the
//     final fix (one short hop) — measured as certification outcome.
//  C. suppressing in-zone points vs keeping them (utility vs leaking the
//     meeting point itself).
//  D. session recordings vs continuous 24 h recording — the data regime
//     assumption, quantified.
#include <iostream>

#include "attacks/poi_extraction.h"
#include "core/experiment.h"
#include "geo/polyline.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "metrics/poi_metrics.h"
#include "privacy/certification.h"
#include "synth/population.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 86;

using namespace mobipriv;

/// Stage 1 variant using naive arc-length resampling (the ablated design).
model::Dataset ArcLengthSmooth(const model::Dataset& input, double spacing) {
  model::Dataset output;
  for (model::UserId id = 0; id < input.UserCount(); ++id) {
    output.InternUser(input.UserName(id));
  }
  for (const auto& trace : input.traces()) {
    if (trace.size() < 2) continue;
    const geo::LocalProjection projection(trace.BoundingBox().Center());
    const auto resampled =
        geo::ResampleUniform(projection.Project(trace.Positions()), spacing);
    if (resampled.size() < 2) continue;
    model::Trace out;
    out.set_user(trace.user());
    const auto t0 = trace.front().time;
    const auto t1 = trace.back().time;
    for (std::size_t k = 0; k < resampled.size(); ++k) {
      const double alpha = static_cast<double>(k) /
                           static_cast<double>(resampled.size() - 1);
      out.Append({projection.Unproject(resampled[k]),
                  t0 + static_cast<util::Timestamp>(
                           alpha * static_cast<double>(t1 - t0))});
    }
    output.AddTrace(std::move(out));
  }
  return output;
}

}  // namespace

int main() {
  std::cout << "=== E9: design-choice ablations ===\n\n";
  synth::PopulationConfig population;
  population.agents = 20;
  population.days = 1;
  population.seed = kSeed;
  const synth::SyntheticWorld world(population);

  const geo::LocalProjection frame =
      attacks::DatasetProjection(world.dataset());
  const auto truth = metrics::DistinctTruePlaces(
      world.ground_truth(), world.projection(), frame);
  const attacks::PoiExtractor extractor;
  const auto recall = [&](const model::Dataset& published) {
    return metrics::ScorePoiExtraction(extractor.Extract(published, frame),
                                       truth)
        .Recall();
  };

  // ---- A: chord stepping vs arc-length resampling. ----
  std::cout << "--- A: stage-1 resampling primitive ---\n";
  core::Table a({"variant", "POI recall", "events ratio"});
  const double raw_events =
      static_cast<double>(world.dataset().EventCount());
  {
    util::Rng rng(1);
    const mech::SpeedSmoothing chord;  // 100 m
    const auto published = chord.Apply(world.dataset(), rng);
    a.AddRow({"chord stepping (ours)",
              util::FormatDouble(recall(published), 3),
              util::FormatDouble(published.EventCount() / raw_events, 3)});
    const auto arc = ArcLengthSmooth(world.dataset(), 100.0);
    a.AddRow({"arc-length resample (ablated)",
              util::FormatDouble(recall(arc), 3),
              util::FormatDouble(arc.EventCount() / raw_events, 3)});
  }
  std::cout << a.ToString() << "\n";

  // ---- B: trailing-remainder trim -> exact certification. ----
  std::cout << "--- B: constant-speed certification of stage 1 ---\n";
  {
    util::Rng rng(2);
    const mech::SpeedSmoothing mechanism;
    const auto published = mechanism.Apply(world.dataset(), rng);
    const auto cert = privacy::CertifyConstantSpeed(published);
    std::cout << cert.ToString() << "\n\n";
  }

  // ---- C: suppression of in-zone points. ----
  std::cout << "--- C: mix-zone point suppression ---\n";
  core::Table c({"suppress", "published events", "suppressed %",
                 "co-location points published"});
  for (const bool suppress : {true, false}) {
    mech::MixZoneConfig config;
    config.suppress_zone_points = suppress;
    const mech::MixZone mixzone(config);
    util::Rng rng(3);
    mech::MixZoneReport report;
    const auto published =
        mixzone.ApplyWithReport(world.dataset(), rng, report);
    // Points inside detected zones still published = the leak.
    const geo::LocalProjection plane(
        world.dataset().BoundingBox().Center());
    std::size_t in_zone_published = 0;
    for (const auto& trace : published.traces()) {
      for (const auto& event : trace) {
        for (const auto& zone : report.zones) {
          if (geo::Distance(plane.Project(event.position), zone.center) <=
              zone.radius_m) {
            ++in_zone_published;
            break;
          }
        }
      }
    }
    c.AddRow({suppress ? "yes (ours)" : "no (ablated)",
              std::to_string(published.EventCount()),
              util::FormatDouble(100.0 * report.SuppressionRatio(), 2),
              std::to_string(in_zone_published)});
  }
  std::cout << c.ToString() << "\n";

  // ---- D: session vs continuous recording. ----
  std::cout << "--- D: recording model (data-regime assumption) ---\n";
  core::Table d({"recording", "raw POI recall", "ours POI recall",
                 "mean published speed (m/s)"});
  for (const bool continuous : {false, true}) {
    synth::PopulationConfig regime = population;
    regime.simulator.continuous_recording = continuous;
    const synth::SyntheticWorld regime_world(regime);
    const auto regime_frame =
        attacks::DatasetProjection(regime_world.dataset());
    const auto regime_truth = metrics::DistinctTruePlaces(
        regime_world.ground_truth(), regime_world.projection(),
        regime_frame);
    const auto score = [&](const model::Dataset& dataset) {
      return metrics::ScorePoiExtraction(
                 extractor.Extract(dataset, regime_frame), regime_truth)
          .Recall();
    };
    util::Rng rng(4);
    const mech::SpeedSmoothing mechanism;
    const auto published = mechanism.Apply(regime_world.dataset(), rng);
    double speed_sum = 0.0;
    std::size_t speed_n = 0;
    for (const auto& trace : published.traces()) {
      if (trace.Duration() <= 0) continue;
      speed_sum += trace.LengthMeters() /
                   static_cast<double>(trace.Duration());
      ++speed_n;
    }
    d.AddRow({continuous ? "continuous 24h (ablated)" : "sessions (ours)",
              util::FormatDouble(score(regime_world.dataset()), 3),
              util::FormatDouble(score(published), 3),
              util::FormatDouble(speed_n ? speed_sum / speed_n : 0.0, 2)});
  }
  std::cout << d.ToString()
            << "\nexpected shape: (A) arc-length resampling leaks most "
               "POIs, chord stepping leaks ~none; (B) stage-1 output "
               "certifies; (C) disabling suppression publishes the "
               "co-location points; (D) 24h recording collapses the "
               "published speed to ~0.2 m/s and degrades hiding.\n";
  return 0;
}
