// E6 — sampling-rate sweep for the constant-speed stage.
//
// Section III: "The first step introduces only error when interpolating new
// points between known ones. If the sampling rate is high enough, this
// interpolation should be precise enough to introduce almost no spatial
// inaccuracy." This bench degrades the input sampling rate from 15 s to
// 300 s and measures the geometry-only (path) distortion of the published
// constant-speed traces, plus a spacing ablation at fixed rate.
#include <iostream>

#include "core/experiment.h"
#include "mechanisms/speed_smoothing.h"
#include "metrics/spatial_distortion.h"
#include "model/filters.h"
#include "synth/population.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 60221;

mobipriv::model::Dataset ResampleDataset(const mobipriv::model::Dataset& in,
                                         mobipriv::util::Timestamp step) {
  mobipriv::model::Dataset out;
  for (mobipriv::model::UserId id = 0; id < in.UserCount(); ++id) {
    out.InternUser(in.UserName(id));
  }
  for (const auto& trace : in.traces()) {
    out.AddTrace(mobipriv::model::ResampleTime(trace, step));
  }
  return out;
}

}  // namespace

int main() {
  using namespace mobipriv;

  std::cout << "=== E6: input sampling rate vs interpolation error ===\n\n";
  synth::PopulationConfig population;
  population.agents = 20;
  population.days = 1;
  population.seed = kSeed;
  population.simulator.sampling_interval_s = 15;  // dense reference
  const synth::SyntheticWorld world(population);
  const model::Dataset& reference = world.dataset();

  const mech::SpeedSmoothing smoothing;  // default 100 m spacing
  core::Table table({"input period (s)", "path err mean (m)",
                     "path err p95 (m)", "path err max (m)"});
  for (const util::Timestamp period : {15L, 30L, 60L, 120L, 300L}) {
    const model::Dataset degraded = ResampleDataset(reference, period);
    util::Rng rng(kSeed + 1);
    const model::Dataset published = smoothing.Apply(degraded, rng);
    // Error against the dense reference: geometry-only view isolates the
    // interpolation error the paper reasons about.
    const auto distortion = metrics::MeasureDistortion(reference, published);
    table.AddRow({std::to_string(period),
                  util::FormatDouble(distortion.path_m.mean, 1),
                  util::FormatDouble(distortion.path_m.p95, 1),
                  util::FormatDouble(distortion.path_m.max, 1)});
  }
  std::cout << table.ToString() << "\n";

  // ---- Spacing ablation at the dense rate. ----
  std::cout << "--- spacing epsilon ablation (dense input) ---\n";
  core::Table ablation({"spacing (m)", "path err mean (m)",
                        "published events", "events ratio"});
  const double raw_events = static_cast<double>(reference.EventCount());
  for (const double spacing : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    mech::SpeedSmoothingConfig config;
    config.spacing_m = spacing;
    const mech::SpeedSmoothing mechanism(config);
    util::Rng rng(kSeed + 2);
    const model::Dataset published = mechanism.Apply(reference, rng);
    const auto distortion = metrics::MeasureDistortion(reference, published);
    ablation.AddRow({util::FormatDouble(spacing, 0),
                     util::FormatDouble(distortion.path_m.mean, 1),
                     std::to_string(published.EventCount()),
                     util::FormatDouble(
                         static_cast<double>(published.EventCount()) /
                             raw_events,
                         3)});
  }
  std::cout << ablation.ToString()
            << "\nexpected shape: path error grows slowly with the input "
               "period (linear interpolation between sparser fixes strays "
               "from the road) and roughly linearly with the spacing "
               "epsilon (chord stepping cuts corners by up to epsilon) — "
               "both stay at metres-to-tens-of-metres, far below noise "
               "mechanisms.\n";
  return 0;
}
