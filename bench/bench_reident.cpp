// E4 — re-identification attack: raw vs constant-speed vs full pipeline.
//
// Section III's second threat: "The other privacy threat we want to address
// in this paper is the re-identification of users." The adversary trains
// POI profiles on an identified period (day 0) and links the anonymized
// publication of a later period (day 1). Rows compare the linkage accuracy
// across mechanisms; the paper's expectation is raw >> ours, with swapping
// adding confusion on top of POI hiding.
#include <iostream>

#include "attacks/home_work.h"
#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "core/experiment.h"
#include "metrics/reident_metrics.h"
#include "synth/population.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 2718;

}  // namespace

int main() {
  using namespace mobipriv;

  std::cout << "=== E4: re-identification (POI-profile linkage) ===\n\n";
  synth::PopulationConfig population;
  population.agents = 40;
  population.days = 2;
  population.seed = kSeed;
  const synth::SyntheticWorld world(population);

  const geo::LocalProjection frame =
      attacks::DatasetProjection(world.dataset());
  const attacks::ReidentificationAttack attack;
  const model::Dataset train = world.DatasetForDays({0});
  const model::Dataset test = world.DatasetForDays({1});
  const auto profiles = attack.BuildProfiles(train, frame);
  std::cout << "adversary: " << profiles.size()
            << " identified profiles from day 0; attacking day 1 ("
            << test.TraceCount() << " traces)\n\n";

  core::Table table({"mechanism", "linkable traces", "correct links",
                     "accuracy(all)", "accuracy(linkable)"});
  for (const auto& mechanism : core::StandardRoster()) {
    util::Rng rng(kSeed + 1);
    const model::Dataset published = mechanism->Apply(test, rng);
    const auto results = attack.Attack(profiles, published, frame);
    const auto report = metrics::SummarizeReident(results);
    table.AddRow({mechanism->Name(), std::to_string(report.linkable),
                  std::to_string(report.correct),
                  util::FormatDouble(report.accuracy_all, 3),
                  util::FormatDouble(report.accuracy_linkable, 3)});
  }
  std::cout << table.ToString()
            << "\nexpected shape: identity links most users (home/work "
               "pairs are near-unique); ours collapses accuracy because no "
               "POI profile can be extracted at all.\n\n";

  // ---- Home/work inference: the strongest quasi-identifier. ----
  std::cout << "--- home/work inference (full dataset) ---\n";
  core::Table hw({"mechanism", "homes found", "works found", "users"});
  const attacks::HomeWorkAttack home_work;
  const auto truth_point = [&](synth::PoiId poi) {
    return frame.Project(
        world.projection().Unproject(world.universe().site(poi).position));
  };
  for (const auto& mechanism : core::StandardRoster({0.01})) {
    util::Rng rng(kSeed + 2);
    const model::Dataset published =
        mechanism->Apply(world.dataset(), rng);
    const auto guesses = home_work.Infer(published, frame);
    std::size_t homes = 0;
    std::size_t works = 0;
    for (const auto& guess : guesses) {
      const auto& profile = world.profiles()[guess.user];
      if (guess.home && geo::Distance(*guess.home,
                                      truth_point(profile.home)) < 300.0) {
        ++homes;
      }
      if (guess.work && geo::Distance(*guess.work,
                                      truth_point(profile.work)) < 300.0) {
        ++works;
      }
    }
    hw.AddRow({mechanism->Name(), std::to_string(homes),
               std::to_string(works),
               std::to_string(world.profiles().size())});
  }
  std::cout << hw.ToString()
            << "\nexpected shape: raw data reveals most homes AND "
               "workplaces (the quasi-identifier pair); ours reveals "
               "none.\n";
  return 0;
}
