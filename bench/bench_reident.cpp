// E4 — re-identification attacks, as a scenario-engine grid.
//
// Section III's second threat: "The other privacy threat we want to address
// in this paper is the re-identification of users." Two attack evaluators
// over the standard roster:
//   * reident — POI-profile linkage: profiles trained on the original
//     (identified) data, matched against the anonymized publication;
//   * home_work — the strongest quasi-identifier pair: how many of the
//     home/work locations inferable from the raw data are still found at
//     the same place in the published data.
// One grid: every mechanism runs once; both attacks consume the memoized
// output as zero-copy views.
//
// Threat model note: the engine evaluators score SAME-PERIOD linkage —
// the adversary holds the identified raw corpus and links the anonymized
// re-publication of that same period. This upper-bounds the older
// cross-period variant (train on day 0, attack day 1): identity rows sit
// near the profile-extraction ceiling, and a mechanism only scores low if
// it destroys the profiles themselves, which is exactly the paper's
// claim. (The cross-period split needs ground-truth day labels, which
// generic dataset sources do not carry.)
#include <iostream>

#include "core/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("E4: re-identification (POI-profile linkage)");
  cli.AddOption("agents", "synthetic world size", "40");
  util::AddRunOptions(cli, 2718);
  if (!cli.Parse(argc, argv)) return 1;
  const util::RunOptions run = util::ApplyRunOptions(cli);

  std::cout << "=== E4: re-identification (POI-profile linkage) ===\n\n";
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Synthetic(
      static_cast<std::size_t>(cli.GetInt("agents")), 2, run.seed);
  spec.mechanisms = core::StandardRosterSpecs();
  spec.evaluators = {"reident", "home_work"};
  spec.seeds = {run.seed + 1};
  spec.threads = run.threads;

  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  std::cout << report.Pivot("reident").ToString()
            << "\nexpected shape: identity links most users (home/work "
               "pairs are near-unique); ours collapses accuracy because no "
               "POI profile can be extracted at all.\n\n";

  std::cout << "--- home/work inference ---\n"
            << report.Pivot("home_work[radius=300m]").ToString() << "\n"
            << engine.stats().ToString() << "\n"
            << "\nexpected shape: raw data re-finds most homes AND "
               "workplaces (the quasi-identifier pair); ours re-finds "
               "none.\n";
  return 0;
}
