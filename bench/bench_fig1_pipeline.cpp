// E1 / Figure 1 — the paper's only figure, reproduced numerically.
//
// Panel (a): two users' original traces with visible POIs (stop clusters).
// Panel (b): after enforcing constant speed, the POIs are gone and points
//            are evenly spaced.
// Panel (c): after mix-zone swapping, the traces exchange identities inside
//            the natural crossing.
//
// For each panel this bench prints the measurable counterpart of what the
// figure shows: extractable POIs per user, speed coefficient of variation,
// inter-point spacing dispersion, and the identity permutation applied.
#include <iostream>

#include "attacks/poi_extraction.h"
#include "core/experiment.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "model/stats.h"
#include "synth/population.h"
#include "util/string_utils.h"

int main() {
  using namespace mobipriv;

  std::cout << "=== E1 / Figure 1: two-user pipeline walkthrough ===\n\n";
  // A seed whose scenario contains a natural crossing (the generator routes
  // both commutes through the same hub).
  const auto world = synth::MakeCrossingPairScenario(7);
  const model::Dataset& raw = world.dataset();

  const attacks::PoiExtractor extractor;
  const geo::LocalProjection frame = attacks::DatasetProjection(raw);

  const auto describe = [&](const model::Dataset& dataset,
                            const char* panel) {
    core::Table table({"user", "fixes", "POIs extractable", "speed CV",
                       "spacing CV"});
    for (const auto& trace : dataset.traces()) {
      std::size_t pois = 0;
      for (const auto& poi : extractor.Extract(dataset, frame)) {
        if (poi.user == trace.user()) ++pois;
      }
      const auto dists = model::InterEventDistances(trace);
      util::RunningStat spacing;
      for (const double d : dists) spacing.Add(d);
      const double spacing_cv =
          spacing.Mean() > 0.0 ? spacing.Stddev() / spacing.Mean() : 0.0;
      table.AddRow({dataset.UserName(trace.user()),
                    std::to_string(trace.size()), std::to_string(pois),
                    util::FormatDouble(
                        model::SpeedCoefficientOfVariation(trace), 3),
                    util::FormatDouble(spacing_cv, 3)});
    }
    std::cout << panel << "\n" << table.ToString() << "\n";
  };

  describe(raw, "--- Panel (a): original traces (POIs visible) ---");

  // Panel (b): constant speed.
  const mech::SpeedSmoothing smoothing;
  util::Rng rng(1);
  const model::Dataset smoothed = smoothing.Apply(raw, rng);
  describe(smoothed,
           "--- Panel (b): constant speed enforced (POIs hidden) ---");

  // Panel (c): mix-zone swapping. The permutation drawn inside the zone is
  // uniform — it may be the identity (that unpredictability IS the defence).
  // For the figure we want to display an actual swap, so draw runs until
  // one happens and report how many runs it took (geometric with p = 1/2
  // for two users).
  mech::MixZoneConfig zone_config;
  zone_config.zone_radius_m = 200.0;
  zone_config.time_window_s = 900;
  const mech::MixZone mixzone(zone_config);
  mech::MixZoneReport report;
  model::Dataset published;
  std::uint64_t runs = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    util::Rng zone_rng(seed);
    published = mixzone.ApplyWithReport(smoothed, zone_rng, report);
    ++runs;
    if (report.swaps_applied > 0) break;
  }
  describe(published, "--- Panel (c): after mix-zone swapping ---");
  std::cout << "mix-zone outcome: " << report.ToString() << " (run " << runs
            << " of the uniform permutation draw)\n";
  std::cout << "\npaper-claim check: POIs(a) > 0, POIs(b) == 0, zone "
            << (report.occurrences > 0 ? "found" : "NOT found") << ", swap "
            << (report.swaps_applied > 0 ? "applied" : "NOT applied")
            << "\n";
  return 0;
}
