// E8 — throughput of every mechanism and attack (google-benchmark).
//
// Publication pipelines run offline, but a practical tool must process
// metropolitan datasets in minutes. These microbenchmarks measure events/s
// for each mechanism, the POI attack, the mix-zone detector and the core
// geometric kernels, over growing dataset sizes.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>
#include <sstream>

#include "attacks/poi_extraction.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "attacks/reident.h"
#include "core/anonymizer.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "mechanisms/registry.h"
#include "geo/distance_batch.h"
#include "geo/polyline.h"
#include "mechanisms/cloaking.h"
#include "mechanisms/geo_indistinguishability.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "mechanisms/wait4me.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"
#include "synth/streaming_world.h"
#include "util/resource.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace {

using namespace mobipriv;

/// Shared worlds, built once per size (agents = size, 1 day).
const synth::SyntheticWorld& WorldOfSize(std::size_t agents) {
  static std::map<std::size_t, std::unique_ptr<synth::SyntheticWorld>> cache;
  auto it = cache.find(agents);
  if (it == cache.end()) {
    synth::PopulationConfig config;
    config.agents = agents;
    config.days = 1;
    config.seed = 9000 + agents;
    it = cache.emplace(agents,
                       std::make_unique<synth::SyntheticWorld>(config))
             .first;
  }
  return *it->second;
}

/// Attaches the process peak-RSS counter to a row (MB). getrusage reports
/// a lifetime high-water mark, so inside a full suite run the value is an
/// upper bound shaped by whatever ran earlier; run a benchmark alone
/// (--benchmark_filter) for its true residency — the out-of-core
/// acceptance procedure does exactly that. compare_bench.py prints these
/// counters as an informational (never gated) delta table.
void RecordPeakRss(benchmark::State& state) {
  state.counters["peak_rss_mb"] =
      static_cast<double>(util::PeakRssBytes()) / (1024.0 * 1024.0);
}

template <typename MechanismT>
void RunMechanism(benchmark::State& state, const MechanismT& mechanism) {
  const auto& world = WorldOfSize(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  std::size_t events = 0;
  for (auto _ : state) {
    const model::Dataset out = mechanism.Apply(world.dataset(), rng);
    benchmark::DoNotOptimize(out.EventCount());
    events += world.dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_SpeedSmoothing(benchmark::State& state) {
  RunMechanism(state, mech::SpeedSmoothing{});
}
BENCHMARK(BM_SpeedSmoothing)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_MixZone(benchmark::State& state) {
  RunMechanism(state, mech::MixZone{});
}
BENCHMARK(BM_MixZone)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  RunMechanism(state, core::Anonymizer{});
}
BENCHMARK(BM_FullPipeline)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_GeoInd(benchmark::State& state) {
  RunMechanism(state, mech::GeoIndistinguishability{});
}
BENCHMARK(BM_GeoInd)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_Cloaking(benchmark::State& state) {
  RunMechanism(state, mech::Cloaking{});
}
BENCHMARK(BM_Cloaking)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_Wait4Me(benchmark::State& state) {
  RunMechanism(state, mech::Wait4Me{});
}
BENCHMARK(BM_Wait4Me)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_PoiExtraction(benchmark::State& state) {
  const auto& world = WorldOfSize(static_cast<std::size_t>(state.range(0)));
  const attacks::PoiExtractor extractor;
  const geo::LocalProjection frame =
      attacks::DatasetProjection(world.dataset());
  std::size_t events = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(world.dataset(), frame));
    events += world.dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PoiExtraction)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Reident(benchmark::State& state) {
  const auto& world = WorldOfSize(static_cast<std::size_t>(state.range(0)));
  const geo::LocalProjection frame =
      attacks::DatasetProjection(world.dataset());
  const attacks::ReidentificationAttack attack;
  const auto profiles = attack.BuildProfiles(world.dataset(), frame);
  std::size_t events = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.Attack(profiles, world.dataset(), frame));
    events += world.dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Reident)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

/// The acceptance workload: full anonymization pipeline (speed smoothing +
/// mix zones) followed by the POI-extraction attack on the published data.
/// The Serial/Parallel pair measures the batch engine's scaling; outputs
/// are byte-identical between the two (see test_parallel_determinism).
void RunEndToEnd(benchmark::State& state, std::size_t parallelism) {
  const util::ScopedParallelism scope(parallelism);
  const auto& world = WorldOfSize(static_cast<std::size_t>(state.range(0)));
  const core::Anonymizer anonymizer;
  const attacks::PoiExtractor extractor;
  util::Rng rng(1);
  std::size_t events = 0;
  for (auto _ : state) {
    const model::Dataset published = anonymizer.Apply(world.dataset(), rng);
    benchmark::DoNotOptimize(extractor.Extract(published));
    events += world.dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_EndToEndSerial(benchmark::State& state) { RunEndToEnd(state, 1); }
BENCHMARK(BM_EndToEndSerial)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndParallel(benchmark::State& state) {
  // 0 = restore the default (MOBIPRIV_THREADS or hardware concurrency).
  RunEndToEnd(state, 0);
}
BENCHMARK(BM_EndToEndParallel)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Ingestion throughput ---------------------------------------------------
// CSV bytes/s of the chunked parallel reader (BM_IngestCsv) against the
// streaming single-pass reader it replaced (BM_IngestCsvStreaming). The
// JSON output carries bytes_per_second, so BENCH_throughput.json tracks
// ingestion MB/s PR over PR.

/// CSV text of a world, built once per size (agents -> megabytes).
const std::string& CsvOfSize(std::size_t agents) {
  static std::map<std::size_t, std::string> cache;
  auto it = cache.find(agents);
  if (it == cache.end()) {
    std::ostringstream os;
    model::WriteCsv(WorldOfSize(agents).dataset(), os);
    it = cache.emplace(agents, os.str()).first;
  }
  return it->second;
}

void BM_IngestCsv(benchmark::State& state) {
  const std::string& text = CsvOfSize(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const model::Dataset dataset = model::ReadCsvText(text);
    benchmark::DoNotOptimize(dataset.EventCount());
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  RecordPeakRss(state);
}
BENCHMARK(BM_IngestCsv)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_IngestCsvSingleThread(benchmark::State& state) {
  const util::ScopedParallelism one(1);
  const std::string& text = CsvOfSize(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const model::Dataset dataset = model::ReadCsvText(text);
    benchmark::DoNotOptimize(dataset.EventCount());
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_IngestCsvSingleThread)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_IngestCsvStreaming(benchmark::State& state) {
  // The pre-refactor reader: the baseline the chunked path is scored
  // against (acceptance: >= 3x with 4 workers).
  const std::string& text = CsvOfSize(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::istringstream in(text);
    const model::Dataset dataset = model::ReadCsvStreaming(in);
    benchmark::DoNotOptimize(dataset.EventCount());
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_IngestCsvStreaming)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Columnar on-disk format (.mpc) ----------------------------------------
// The startup-cost ladder the format exists for: parse CSV every run
// (BM_IngestCsv), read a prebuilt columnar file (BM_ReadColumnar — owning,
// every checksum verified), or mmap it (BM_OpenColumnarMmap — zero-copy,
// lazily faulted; the acceptance bar is >= 10x over the CSV parse of the
// same data). All three process the same dataset, so wall times compare
// directly across rows of BENCH_throughput.json.

/// Prebuilt .mpc of a world, written once per size into the temp dir.
const std::string& ColumnarPathOfSize(std::size_t agents) {
  static std::map<std::size_t, std::string> cache;
  auto it = cache.find(agents);
  if (it == cache.end()) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("mobipriv_bench_" + std::to_string(agents) + ".mpc"))
            .string();
    model::WriteColumnar(
        model::EventStore::FromDataset(WorldOfSize(agents).dataset()), path);
    it = cache.emplace(agents, path).first;
  }
  return it->second;
}

void BM_WriteColumnar(benchmark::State& state) {
  const model::EventStore store = model::EventStore::FromDataset(
      WorldOfSize(static_cast<std::size_t>(state.range(0))).dataset());
  const std::string path =
      (std::filesystem::temp_directory_path() / "mobipriv_bench_write.mpc")
          .string();
  std::size_t bytes = 0;
  for (auto _ : state) {
    model::WriteColumnar(store, path);
    bytes += static_cast<std::size_t>(std::filesystem::file_size(path));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  RecordPeakRss(state);
  std::filesystem::remove(path);
}
BENCHMARK(BM_WriteColumnar)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ReadColumnar(benchmark::State& state) {
  const std::string& path =
      ColumnarPathOfSize(static_cast<std::size_t>(state.range(0)));
  const auto file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(path));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const model::EventStore store = model::ReadColumnar(path);
    benchmark::DoNotOptimize(store.EventCount());
    bytes += file_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  RecordPeakRss(state);
}
BENCHMARK(BM_ReadColumnar)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_OpenColumnarMmap(benchmark::State& state) {
  // Open + build the whole-file DatasetView: what a pipeline run pays
  // before its first kernel touches a column. Pages fault lazily, so this
  // is metadata-decode cost, independent of the event count.
  const std::string& path =
      ColumnarPathOfSize(static_cast<std::size_t>(state.range(0)));
  std::size_t events = 0;
  for (auto _ : state) {
    const model::MappedColumnar mapped = model::MapColumnar(path);
    benchmark::DoNotOptimize(mapped.View().EventCount());
    events += mapped.EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
}
BENCHMARK(BM_OpenColumnarMmap)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_OpenColumnarMmapVerified(benchmark::State& state) {
  // Same open with the column checksums verified: one sequential FNV pass
  // over the mapping (the untrusted-media open).
  const std::string& path =
      ColumnarPathOfSize(static_cast<std::size_t>(state.range(0)));
  const auto file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(path));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const model::MappedColumnar mapped =
        model::MapColumnar(path, {.verify_checksums = true});
    benchmark::DoNotOptimize(mapped.View().EventCount());
    bytes += file_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OpenColumnarMmapVerified)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Scenario engine: memoized grid vs independent runs --------------------
// The engine's acceptance workload: a grid of 6 mechanisms x 3 evaluators
// over a prebuilt `.mpc` world, mmap-fed (no full-dataset Materialize of
// the source). BM_EngineGrid runs it through the scenario engine, which
// applies each mechanism ONCE and fans its memoized output to every
// evaluator; BM_EngineGridIndependent runs the same grid the way the
// standalone benches used to — re-applying the mechanism for every
// (mechanism, evaluator) cell. The wall-clock gap is the memoization win
// (18 mechanism applications collapse to 6).

const std::vector<std::string>& GridMechanisms() {
  static const std::vector<std::string> mechanisms = {
      "speed_smoothing",   "geo_ind[eps=0.01]", "geo_ind[eps=0.1]",
      "cloaking",          "gaussian",          "downsampling"};
  return mechanisms;
}

const std::vector<std::string>& GridEvaluators() {
  // Linear-scan evaluators: the grid cost is then mechanism-dominated,
  // which is what the memoization claim is about (the engine runs M
  // mechanism applications where the independent pattern runs M x E).
  static const std::vector<std::string> evaluators = {
      "coverage", "trajectory_stats", "heatmap"};
  return evaluators;
}

void BM_EngineGrid(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string& path = ColumnarPathOfSize(agents);
  std::size_t events = 0;
  for (auto _ : state) {
    core::ScenarioSpec spec;
    spec.source = core::DatasetSourceSpec::ColumnarFile(path);
    spec.mechanisms = GridMechanisms();
    spec.evaluators = GridEvaluators();
    spec.seeds = {1};
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    benchmark::DoNotOptimize(report.rows().size());
    state.counters["mechanism_runs"] = static_cast<double>(
        engine.stats().mechanism_nodes);
    events += WorldOfSize(agents).dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
}
BENCHMARK(BM_EngineGrid)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_EngineGridCached(benchmark::State& state) {
  // Same grid with the `.mpc` output cache on: iteration 1 spills every
  // mechanism output (cold), later iterations reuse them (warm) — the
  // cross-run reuse path. cache_hits/cache_misses counters accumulate
  // across iterations, so hits > 0 proves reuse happened in-run.
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string& path = ColumnarPathOfSize(agents);
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("mobipriv_bench_mech_cache_" + std::to_string(agents)))
          .string();
  std::filesystem::remove_all(cache_dir);
  std::size_t events = 0;
  double hits = 0.0;
  double misses = 0.0;
  for (auto _ : state) {
    core::ScenarioSpec spec;
    spec.source = core::DatasetSourceSpec::ColumnarFile(path);
    spec.mechanisms = GridMechanisms();
    spec.evaluators = GridEvaluators();
    spec.seeds = {1};
    spec.mechanism_cache_dir = cache_dir;
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    benchmark::DoNotOptimize(report.rows().size());
    hits += static_cast<double>(engine.stats().cache_hits);
    misses += static_cast<double>(engine.stats().cache_misses);
    events += WorldOfSize(agents).dataset().EventCount();
  }
  state.counters["cache_hits"] = hits;
  state.counters["cache_misses"] = misses;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
  std::filesystem::remove_all(cache_dir);
}
BENCHMARK(BM_EngineGridCached)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_EngineGridIndependent(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string& path = ColumnarPathOfSize(agents);
  std::size_t events = 0;
  for (auto _ : state) {
    const core::BoundSource source = core::BoundSource::Bind(
        core::DatasetSourceSpec::ColumnarFile(path));
    const geo::LocalProjection frame =
        attacks::DatasetProjection(source.view());
    for (const std::string& mechanism_spec : GridMechanisms()) {
      for (const std::string& evaluator_spec : GridEvaluators()) {
        const auto mechanism = mech::CreateMechanism(mechanism_spec);
        const std::string name = mechanism->Name();
        util::Rng rng(util::DeriveStreamSeed(
            1, model::Fnv1a64(name.data(), name.size()), 0));
        const model::Dataset published =
            mechanism->ApplyView(source.view(), rng);
        const auto evaluator = core::CreateEvaluator(evaluator_spec);
        const auto values = evaluator->Evaluate(
            {source.view(), model::DatasetView::Of(published), frame, 1});
        benchmark::DoNotOptimize(values.size());
      }
    }
    state.counters["mechanism_runs"] = static_cast<double>(
        GridMechanisms().size() * GridEvaluators().size());
    events += WorldOfSize(agents).dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
}
BENCHMARK(BM_EngineGridIndependent)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_EngineGridChainShared(benchmark::State& state) {
  // Four 3-stage chain rows sharing a 2-stage prefix (the paper's sweep
  // shape: one pipeline, many final stages). The engine compiles one
  // node per distinct chain prefix, so the shared stages run once per
  // iteration instead of once per row — stage_reuses counts the sharing
  // (docs/FORMAT.md, "Chain prefixes and cache keys").
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string& path = ColumnarPathOfSize(agents);
  std::size_t events = 0;
  for (auto _ : state) {
    core::ScenarioSpec spec;
    spec.source = core::DatasetSourceSpec::ColumnarFile(path);
    spec.mechanisms = {
        "geo_ind[eps=0.05]|downsampling[dt=120]|mixzone[r=100m]",
        "geo_ind[eps=0.05]|downsampling[dt=120]|mixzone[r=200m]",
        "geo_ind[eps=0.05]|downsampling[dt=120]|cloaking",
        "geo_ind[eps=0.05]|downsampling[dt=120]|gaussian"};
    spec.evaluators = GridEvaluators();
    spec.seeds = {1};
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    benchmark::DoNotOptimize(report.rows().size());
    state.counters["mechanism_nodes"] =
        static_cast<double>(engine.stats().mechanism_nodes);
    state.counters["stage_reuses"] =
        static_cast<double>(engine.stats().stage_reuses);
    events += WorldOfSize(agents).dataset().EventCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
}
BENCHMARK(BM_EngineGridChainShared)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- SIMD batch kernels (roofline-annotated) --------------------------------
// Each kernel bench sets BOTH counters so the JSON carries a roofline
// coordinate: items_per_second (elements/s) and bytes_per_second (the
// kernel's streamed traffic, counted per the attribution schema in
// bench/README.md — input columns read + output columns written, payload
// only). The simd_backend counter records which shim backend was compiled
// in, so an off/auto A-B run labels itself.

/// Deterministic coordinate columns for the batch-distance kernels.
struct BatchColumns {
  std::vector<double> a, b;  // x/y (planar) or lat/lng (geodetic)
};

const BatchColumns& BatchColumnsOfSize(std::size_t n, bool geodetic) {
  static std::map<std::size_t, BatchColumns> planar, geo_cols;
  auto& cache = geodetic ? geo_cols : planar;
  auto it = cache.find(n);
  if (it == cache.end()) {
    util::Rng rng(1234 + n);
    BatchColumns columns;
    for (std::size_t i = 0; i < n; ++i) {
      if (geodetic) {
        columns.a.push_back(45.0 + (rng.NextDouble() - 0.5) * 0.5);
        columns.b.push_back(4.8 + (rng.NextDouble() - 0.5) * 0.5);
      } else {
        columns.a.push_back((rng.NextDouble() - 0.5) * 5000.0);
        columns.b.push_back((rng.NextDouble() - 0.5) * 5000.0);
      }
    }
    it = cache.emplace(n, std::move(columns)).first;
  }
  return it->second;
}

void AnnotateKernel(benchmark::State& state, std::size_t items,
                    std::size_t bytes) {
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["simd_backend"] =
      util::kSimdEnabled ? 1.0 : 0.0;  // 1 = vector ISA, 0 = scalar
}

void BM_DistanceBatchProjected(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BatchColumns& columns = BatchColumnsOfSize(n, false);
  std::vector<double> out(n);
  std::size_t items = 0;
  for (auto _ : state) {
    geo::ProjectedMetricBatch(columns.a.data(), columns.b.data(), n,
                              geo::Point2{17.0, -23.0}, out.data());
    benchmark::DoNotOptimize(out.data());
    items += n;
  }
  // Traffic: reads x + y, writes out (3 doubles per element).
  AnnotateKernel(state, items, items * 3 * sizeof(double));
}
BENCHMARK(BM_DistanceBatchProjected)->Arg(4096)->Arg(65536);

void BM_DistanceBatchEquirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BatchColumns& columns = BatchColumnsOfSize(n, true);
  std::vector<double> out(n);
  std::size_t items = 0;
  for (auto _ : state) {
    geo::EquirectangularBatch(columns.a.data(), columns.b.data(), n,
                              geo::LatLng{45.76, 4.84}, out.data());
    benchmark::DoNotOptimize(out.data());
    items += n;
  }
  AnnotateKernel(state, items, items * 3 * sizeof(double));
}
BENCHMARK(BM_DistanceBatchEquirect)->Arg(4096)->Arg(65536);

void BM_DistanceBatchHaversine(benchmark::State& state) {
  // The libm-bound reference point: per-lane scalar by contract, so the
  // off/auto delta should be ~1x — a control for the other kernel rows.
  const auto n = static_cast<std::size_t>(state.range(0));
  const BatchColumns& columns = BatchColumnsOfSize(n, true);
  std::vector<double> out(n);
  std::size_t items = 0;
  for (auto _ : state) {
    geo::HaversineBatch(columns.a.data(), columns.b.data(), n,
                        geo::LatLng{45.76, 4.84}, out.data());
    benchmark::DoNotOptimize(out.data());
    items += n;
  }
  AnnotateKernel(state, items, items * 3 * sizeof(double));
}
BENCHMARK(BM_DistanceBatchHaversine)->Arg(4096)->Arg(65536);

void BM_DistanceBatchMask(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BatchColumns& columns = BatchColumnsOfSize(n, false);
  std::vector<std::uint8_t> mask(n);
  std::size_t items = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo::WithinRadiusMask(columns.a.data(), columns.b.data(), n,
                              geo::Point2{0.0, 0.0}, 1000.0, mask.data()));
    items += n;
  }
  // Traffic: reads x + y (doubles), writes 1 mask byte per element.
  AnnotateKernel(state, items, items * (2 * sizeof(double) + 1));
}
BENCHMARK(BM_DistanceBatchMask)->Arg(4096)->Arg(65536);

void BM_MixZoneEncounterScan(benchmark::State& state) {
  // Detection only (flatten + projection + CSR-grid encounter scan): the
  // vectorized hot loop of BM_MixZone without clustering, permutation or
  // output assembly diluting it.
  const auto& world = WorldOfSize(static_cast<std::size_t>(state.range(0)));
  const mech::MixZone mixzone;
  const model::DatasetView view = model::DatasetView::Of(world.dataset());
  std::size_t events = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixzone.CountEncounters(view));
    events += world.dataset().EventCount();
  }
  // Traffic: reads lat/lng/time per event once during flatten+project;
  // the cell scans re-read x/y slices (amortized ~1 extra pass).
  AnnotateKernel(state, events, events * 5 * sizeof(double));
}
BENCHMARK(BM_MixZoneEncounterScan)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

// ---- ApplyToTraceColumns kernels, SoA in -> SoA out ------------------------
// The per-trace mechanism kernels measured on the columnar path they were
// vectorized for: EventStore view in, EventStore out, no AoS assembly on
// either side (BM_Cloaking et al. above measure the same mechanisms
// through the AoS Apply adapter, whose Dataset assembly dilutes kernel
// gains). items = input events; bytes = input columns read + output
// columns written (24 B/event each way, rounded by suppression).

const model::EventStore& StoreOfSize(std::size_t agents) {
  static std::map<std::size_t, std::unique_ptr<model::EventStore>> cache;
  auto it = cache.find(agents);
  if (it == cache.end()) {
    it = cache
             .emplace(agents, std::make_unique<model::EventStore>(
                                  model::EventStore::FromDataset(
                                      WorldOfSize(agents).dataset())))
             .first;
  }
  return *it->second;
}

template <typename MechanismT>
void RunKernelToStore(benchmark::State& state, const MechanismT& mechanism) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  const model::EventStore& store = StoreOfSize(agents);
  util::Rng rng(1);
  std::size_t events = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const model::EventStore out = mechanism.ApplyToStore(store.View(), rng);
    benchmark::DoNotOptimize(out.EventCount());
    events += store.EventCount();
    bytes += (store.EventCount() + out.EventCount()) * 3 * sizeof(double);
  }
  AnnotateKernel(state, events, bytes);
}

void BM_KernelCloaking(benchmark::State& state) {
  RunKernelToStore(state, mech::Cloaking{});
}
BENCHMARK(BM_KernelCloaking)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_KernelGeoInd(benchmark::State& state) {
  RunKernelToStore(state, mech::GeoIndistinguishability{});
}
BENCHMARK(BM_KernelGeoInd)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_KernelSpeedSmoothing(benchmark::State& state) {
  RunKernelToStore(state, mech::SpeedSmoothing{});
}
BENCHMARK(BM_KernelSpeedSmoothing)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_KernelMixZone(benchmark::State& state) {
  RunKernelToStore(state, mech::MixZone{});
}
BENCHMARK(BM_KernelMixZone)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_ResampleUniform(benchmark::State& state) {
  // A 1000-vertex zig-zag path resampled at 10 m.
  std::vector<geo::Point2> path;
  for (int i = 0; i < 1000; ++i) {
    path.push_back({static_cast<double>(i) * 37.0,
                    (i % 2 == 0) ? 0.0 : 25.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::ResampleUniform(path, 10.0));
  }
}
BENCHMARK(BM_ResampleUniform);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    synth::PopulationConfig config;
    config.agents = static_cast<std::size_t>(state.range(0));
    config.days = 1;
    config.seed = 1;
    const synth::SyntheticWorld world(config);
    benchmark::DoNotOptimize(world.dataset().EventCount());
  }
}
BENCHMARK(BM_SyntheticGeneration)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

// ---- Out-of-core scale: streaming generation + shard-streamed grids --------
// The 10^6-agent path. BM_GenerateWorld streams a synthetic population
// straight into a sharded `.mpc` directory through per-shard appenders —
// the acceptance bar is peak RSS < 25% of the bytes written at 1M agents
// (run it filtered, in a fresh process, so ru_maxrss is this benchmark's).
// BM_EngineGridShardStream then executes a foldable grid over such a
// directory shard by shard (streamed_shards > 0) against
// BM_EngineGridShardWhole, the same grid forced down the whole-view bind:
// identical reports, one shard resident instead of all of them.

/// Streaming generation config of one bench size: sparse recording (the
/// million-agent sizing — 120 s fixes), 1 day, 16 shards.
synth::StreamingWorldConfig GenerateWorldConfig(std::size_t agents) {
  synth::StreamingWorldConfig config;
  config.population.agents = agents;
  config.population.days = 1;
  config.population.seed = 4242;
  config.population.simulator.sampling_interval_s = 120;
  config.shard_count = 16;
  return config;
}

void BM_GenerateWorld(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mobipriv_bench_genworld_" + std::to_string(agents) + ".shards"))
          .string();
  std::size_t events = 0;
  for (auto _ : state) {
    const synth::StreamingWorldStats stats =
        synth::GenerateShardedWorld(GenerateWorldConfig(agents), dir);
    benchmark::DoNotOptimize(stats.events);
    events += stats.events;
    state.counters["disk_mb"] =
        static_cast<double>(stats.bytes_written) / (1024.0 * 1024.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));  // rows/sec
  RecordPeakRss(state);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_GenerateWorld)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

/// Streaming-generated shard directory of a world, built once per size.
const std::string& ShardDirOfSize(std::size_t agents) {
  static std::map<std::size_t, std::string> cache;
  auto it = cache.find(agents);
  if (it == cache.end()) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("mobipriv_bench_sharddir_" + std::to_string(agents) + ".shards"))
            .string();
    synth::StreamingWorldConfig config;
    config.population.agents = agents;
    config.population.days = 1;
    config.population.seed = 9000 + agents;
    config.shard_count = 8;
    (void)synth::GenerateShardedWorld(config, dir);
    it = cache.emplace(agents, dir).first;
  }
  return it->second;
}

/// Event count of a shard directory from shard headers only (lazy maps,
/// no column pages touched — the count must not cost residency here).
std::size_t ShardDirEventCount(const std::string& dir) {
  const model::ShardManifest manifest = model::ReadShardManifest(dir);
  std::size_t events = 0;
  for (std::size_t s = 0; s < manifest.shard_count; ++s) {
    events += model::MapColumnar(model::ShardDataPath(dir, s)).EventCount();
  }
  return events;
}

/// The foldable grid both shard benches run: single-stage per-trace
/// mechanisms x foldable evaluators (the streamed-path precondition).
core::ScenarioSpec ShardGridSpec(const std::string& dir) {
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.mechanisms = GridMechanisms();
  spec.evaluators = {"trajectory_stats", "range_queries[n=32]"};
  spec.seeds = {1};
  return spec;
}

void BM_EngineGridShardStream(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string& dir = ShardDirOfSize(agents);
  const std::size_t dir_events = ShardDirEventCount(dir);
  std::size_t events = 0;
  for (auto _ : state) {
    core::ScenarioEngine engine(ShardGridSpec(dir));
    const core::Report report = engine.Run();
    benchmark::DoNotOptimize(report.rows().size());
    state.counters["streamed_shards"] =
        static_cast<double>(engine.stats().streamed_shards);
    events += dir_events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
}
BENCHMARK(BM_EngineGridShardStream)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_EngineGridShardWhole(benchmark::State& state) {
  // Whole-view control: an (idle) watchdog disqualifies streaming without
  // changing any result, so this row is the same grid over the same bytes
  // with every shard resident at once.
  const auto agents = static_cast<std::size_t>(state.range(0));
  const std::string& dir = ShardDirOfSize(agents);
  const std::size_t dir_events = ShardDirEventCount(dir);
  std::size_t events = 0;
  for (auto _ : state) {
    core::ScenarioSpec spec = ShardGridSpec(dir);
    spec.node_timeout_ms = 1e9;
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    benchmark::DoNotOptimize(report.rows().size());
    events += dir_events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  RecordPeakRss(state);
}
BENCHMARK(BM_EngineGridShardWhole)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
