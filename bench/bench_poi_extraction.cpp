// E2 — POI retrieval per mechanism, as scenario-engine grids.
//
// The paper's Section II claim: on real-life data, geo-indistinguishability
// "does not prevent the extraction of at least 60 % of the POIs even with a
// high privacy level" [4], while the proposed constant-speed publication is
// designed to hide them entirely (Section III). Three grids over one
// synthetic world:
//   1. the standard roster x the POI attack (poi_survival = fraction of
//      POIs extractable from the raw data that survive publication),
//   2. a geo-indistinguishability epsilon sweep, each eps attacked by
//      both a naive and a noise-calibrated adaptive extractor,
//   3. a constant-speed spacing sweep (ours, stage 1) — one row per eps.
// Where the old bench re-ran every mechanism per table, the engine
// memoizes: each mechanism runs once per grid.
#include <algorithm>
#include <iostream>

#include "core/engine.h"
#include "util/cli.h"
#include "util/string_utils.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("E2: POI extraction attack vs mechanism");
  cli.AddOption("agents", "synthetic world size", "40");
  util::AddRunOptions(cli, 2015);
  if (!cli.Parse(argc, argv)) return 1;
  const util::RunOptions run = util::ApplyRunOptions(cli);
  const auto agents = static_cast<std::size_t>(cli.GetInt("agents"));

  const auto grid = [&](std::vector<std::string> mechanisms) {
    core::ScenarioSpec spec;
    spec.source = core::DatasetSourceSpec::Synthetic(agents, 2, run.seed);
    spec.mechanisms = std::move(mechanisms);
    spec.evaluators = {"poi_attack"};
    spec.seeds = {run.seed + 1};
    spec.threads = run.threads;
    return spec;
  };

  std::cout << "=== E2: POI extraction attack vs mechanism ===\n\n";
  {
    core::ScenarioEngine engine(grid(core::StandardRosterSpecs()));
    const core::Report report = engine.Run();
    std::cout << report.Pivot("poi_attack[radius=250m]").ToString() << "\n"
              << engine.stats().ToString() << "\n\n";
  }

  // Two adversaries per epsilon: the default extractor (fixed 200 m
  // diameter — naive against heavy noise) and an *adaptive* one whose
  // clustering diameter is calibrated to the mechanism's noise scale
  // (2/eps). The adaptive attacker is the one the paper's Section II
  // ">= 60 %" claim is about: dwell clusters survive planar-Laplace noise
  // because their centroid concentrates back on the POI. The adaptive
  // evaluator depends on the row's epsilon, so each epsilon is its own
  // small grid.
  std::cout << "--- geo-indistinguishability epsilon sweep "
               "(naive vs adaptive adversary) ---\n";
  {
    core::Table sweep({"epsilon (1/m)", "noise scale ~2/eps (m)",
                       "survival (naive)", "survival (adaptive)"});
    for (const double eps : {0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001}) {
      const double noise = 2.0 / eps;
      core::ScenarioSpec spec =
          grid({"geo_ind[eps=" + util::FormatDouble(eps, 4) + "]"});
      const std::string adaptive =
          "poi_attack[radius=" +
          util::FormatDouble(std::clamp(noise, 250.0, 500.0), 0) +
          "m,diameter=" +
          util::FormatDouble(std::max(250.0, 3.0 * noise), 0) + "m]";
      spec.evaluators = {"poi_attack", adaptive};
      const core::Report report = core::RunScenario(std::move(spec));
      double naive = 0.0;
      double adapted = 0.0;
      for (const core::ReportRow& row : report.rows()) {
        if (row.metric != "poi_survival") continue;
        (row.evaluator == "poi_attack[radius=250m]" ? naive : adapted) =
            row.value;
      }
      sweep.AddRow({util::FormatDouble(eps, 4),
                    util::FormatDouble(noise, 0),
                    util::FormatDouble(naive, 3),
                    util::FormatDouble(adapted, 3)});
    }
    std::cout << sweep.ToString() << "\n";
  }

  std::cout << "--- constant-speed spacing sweep (ours, stage 1) ---\n";
  {
    std::vector<std::string> sweep;
    for (const double spacing : {25.0, 50.0, 100.0, 200.0, 400.0}) {
      sweep.push_back("ours[speed,eps=" + util::FormatDouble(spacing, 0) +
                      "m]");
    }
    const core::Report report = core::RunScenario(grid(std::move(sweep)));
    std::cout << report.Pivot("poi_attack[radius=250m]").ToString()
              << "\nexpected shape: identity/cloaking survival high; "
                 "geo_ind >= 0.6 at practical eps; ours ~= 0 at every "
                 "spacing.\n";
  }
  return 0;
}
