// E2 — POI retrieval rate per mechanism.
//
// The paper's Section II claim: on real-life data, geo-indistinguishability
// "does not prevent the extraction of at least 60 % of the POIs even with a
// high privacy level" [4], while the proposed constant-speed publication is
// designed to hide them entirely (Section III). This bench runs the
// POI-extraction attack of Gambs et al. [1] against every mechanism in the
// roster and reports recall/precision against synthetic ground truth, plus
// an epsilon sweep for geo-indistinguishability and a spacing sweep for the
// constant-speed stage.
#include <algorithm>
#include <iostream>

#include "attacks/poi_extraction.h"
#include "core/anonymizer.h"
#include "core/experiment.h"
#include "mechanisms/geo_indistinguishability.h"
#include "metrics/poi_metrics.h"
#include "synth/population.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 2015;

}  // namespace

int main() {
  using namespace mobipriv;

  std::cout << "=== E2: POI extraction attack vs mechanism ===\n\n";
  synth::PopulationConfig population;
  population.agents = 40;
  population.days = 2;
  population.seed = kSeed;
  const synth::SyntheticWorld world(population);

  const geo::LocalProjection frame =
      attacks::DatasetProjection(world.dataset());
  const auto truth = metrics::DistinctTruePlaces(
      world.ground_truth(), world.projection(), frame);
  const attacks::PoiExtractor extractor;

  const auto attack = [&](const model::Dataset& published) {
    return metrics::ScorePoiExtraction(extractor.Extract(published, frame),
                                       truth);
  };

  // ---- Main comparison table. ----
  core::Table table(
      {"mechanism", "POI recall", "POI precision", "extracted", "true"});
  for (const auto& mechanism : core::StandardRoster()) {
    util::Rng rng(kSeed + 1);
    const auto score = attack(mechanism->Apply(world.dataset(), rng));
    table.AddRow({mechanism->Name(), util::FormatDouble(score.Recall(), 3),
                  util::FormatDouble(score.Precision(), 3),
                  std::to_string(score.extracted),
                  std::to_string(score.true_pois)});
  }
  std::cout << table.ToString() << "\n";

  // ---- Geo-ind epsilon sweep (the >= 60 % claim). ----
  // Two adversaries: the default extractor (fixed 200 m diameter — naive
  // against heavy noise) and an *adaptive* one whose clustering diameter
  // is calibrated to the mechanism's noise scale (2/eps). The adaptive
  // attacker is the one the paper's Section II claim is about: even at
  // strong epsilon, dwell clusters survive planar-Laplace noise because
  // their centroid concentrates back on the POI.
  std::cout << "--- geo-indistinguishability epsilon sweep ---\n";
  core::Table sweep({"epsilon (1/m)", "noise scale ~2/eps (m)",
                     "recall (naive)", "recall (adaptive)"});
  for (const double eps : {0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001}) {
    util::Rng rng_naive(kSeed + 2);
    util::Rng rng_adaptive(kSeed + 2);
    const mech::GeoIndistinguishability geo_ind(mech::GeoIndConfig{eps});
    const auto naive = attack(geo_ind.Apply(world.dataset(), rng_naive));
    attacks::PoiExtractionConfig adaptive_config;
    // Clustering diameter tracks the noise scale; a POI counts as
    // retrieved when the centroid lands within the noise scale of it
    // (centroid averaging concentrates far tighter in practice).
    adaptive_config.max_diameter_m = std::max(250.0, 3.0 * (2.0 / eps));
    const attacks::PoiExtractor adaptive(adaptive_config);
    metrics::PoiMatchConfig adaptive_match;
    adaptive_match.match_radius_m = std::clamp(2.0 / eps, 250.0, 500.0);
    const auto published = geo_ind.Apply(world.dataset(), rng_adaptive);
    const auto adaptive_score = metrics::ScorePoiExtraction(
        adaptive.Extract(published, frame), truth, adaptive_match);
    sweep.AddRow({util::FormatDouble(eps, 4),
                  util::FormatDouble(2.0 / eps, 0),
                  util::FormatDouble(naive.Recall(), 3),
                  util::FormatDouble(adaptive_score.Recall(), 3)});
  }
  std::cout << sweep.ToString() << "\n";

  // ---- Constant-speed spacing sweep. ----
  std::cout << "--- constant-speed spacing sweep (ours, stage 1) ---\n";
  core::Table ours({"spacing (m)", "POI recall", "published events ratio"});
  const double raw_events =
      static_cast<double>(world.dataset().EventCount());
  for (const double spacing : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    util::Rng rng(kSeed + 3);
    core::AnonymizerConfig config;
    config.enable_mixzones = false;
    config.speed.spacing_m = spacing;
    const core::Anonymizer anonymizer(config);
    const model::Dataset published =
        anonymizer.Apply(world.dataset(), rng);
    const auto score = attack(published);
    ours.AddRow({util::FormatDouble(spacing, 0),
                 util::FormatDouble(score.Recall(), 3),
                 util::FormatDouble(
                     static_cast<double>(published.EventCount()) / raw_events,
                     3)});
  }
  std::cout << ours.ToString()
            << "\nexpected shape: identity/cloaking recall high; geo_ind "
               ">= 0.6 at practical eps; ours ~= 0 at every spacing.\n";
  return 0;
}
