#!/usr/bin/env bash
# Runs the throughput microbenchmarks and records the result as
# BENCH_throughput.json at the repo root, so the perf trajectory is tracked
# PR over PR.
#
# Usage: bench/run_bench.sh [build_dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

if [[ ! -x "$build_dir/bench_throughput" ]]; then
  echo "bench_throughput not found in $build_dir; configuring with -DMOBIPRIV_BENCH=ON" >&2
  cmake -B "$build_dir" -S "$repo_root" -DMOBIPRIV_BENCH=ON
  cmake --build "$build_dir" -j "$(nproc)" --target bench_throughput
fi

"$build_dir/bench_throughput" \
  --benchmark_out="$repo_root/BENCH_throughput.json" \
  --benchmark_out_format=json \
  "$@"

echo "Wrote $repo_root/BENCH_throughput.json"
