// E5 — mix-zone parameter sweep.
//
// Section III: "the only utility loss comes from the fact we suppress
// points inside mix-zones, but this should be a reasonable degradation as
// long as mix-zones remain reasonably small." This bench sweeps the zone
// radius and time window over a crossing-rich population and reports, per
// setting: zones found, occurrences, mean anonymity-set size, suppression
// ratio (the utility cost), swap rate, and the multi-target tracker's
// confusion (the privacy gain). It also ablates suppress_zone_points.
#include <iostream>

#include "attacks/timing_attack.h"
#include "attacks/tracker.h"
#include "core/experiment.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "privacy/uncertainty.h"
#include "synth/population.h"
#include "util/statistics.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 1123;

}  // namespace

int main() {
  using namespace mobipriv;

  std::cout << "=== E5: mix-zone radius/window sweep ===\n\n";
  synth::PopulationConfig population;
  population.agents = 30;
  population.days = 1;
  population.seed = kSeed;
  const synth::SyntheticWorld world(population);
  const model::Dataset& dataset = world.dataset();
  const geo::LocalProjection frame(dataset.BoundingBox().Center());

  core::Table table({"radius (m)", "window (s)", "zones", "occurrences",
                     "mean anon set", "suppressed %", "swaps",
                     "tracker confusion", "timing acc", "entropy bits"});
  for (const double radius : {50.0, 100.0, 150.0, 250.0, 400.0}) {
    for (const util::Timestamp window : {300L, 600L, 1200L}) {
      mech::MixZoneConfig config;
      config.zone_radius_m = radius;
      config.time_window_s = window;
      const mech::MixZone mixzone(config);
      util::Rng rng(kSeed + 1);
      mech::MixZoneReport report;
      const model::Dataset published =
          mixzone.ApplyWithReport(dataset, rng, report);

      // Tracker confusion and timing-attack accuracy pooled over zones.
      const attacks::MultiTargetTracker tracker;
      const attacks::TimingAttack timing;
      std::vector<attacks::TrackingOutcome> outcomes;
      std::vector<attacks::TimingMatch> timing_matches;
      for (const auto& zone : report.zones) {
        const auto zone_outcomes = tracker.TrackThroughZone(
            dataset, published, frame, zone.center, radius);
        outcomes.insert(outcomes.end(), zone_outcomes.begin(),
                        zone_outcomes.end());
        auto crossings = timing.ObserveCrossings(dataset, published, frame,
                                                 zone.center, radius);
        const auto matches = timing.Match(std::move(crossings));
        timing_matches.insert(timing_matches.end(), matches.begin(),
                              matches.end());
      }
      const auto uncertainty =
          privacy::MeasureMixingUncertainty(dataset, report);
      std::vector<double> anon_sizes;
      for (const auto s : report.anonymity_set_sizes) {
        anon_sizes.push_back(static_cast<double>(s));
      }
      table.AddRow(
          {util::FormatDouble(radius, 0), std::to_string(window),
           std::to_string(report.zones.size()),
           std::to_string(report.occurrences),
           util::FormatDouble(util::Mean(anon_sizes), 2),
           util::FormatDouble(100.0 * report.SuppressionRatio(), 2),
           std::to_string(report.swaps_applied),
           util::FormatDouble(
               attacks::MultiTargetTracker::ConfusionRate(outcomes), 3),
           util::FormatDouble(attacks::TimingAttack::Accuracy(timing_matches),
                              3),
           util::FormatDouble(uncertainty.total_bits, 1)});
    }
  }
  std::cout << table.ToString() << "\n";

  // ---- Ablation: keep in-zone points (suppress_zone_points = false). ----
  std::cout << "--- ablation: keeping in-zone points ---\n";
  core::Table ablation({"suppress", "suppressed %", "swaps", "zones"});
  for (const bool suppress : {true, false}) {
    mech::MixZoneConfig config;
    config.zone_radius_m = 150.0;
    config.suppress_zone_points = suppress;
    const mech::MixZone mixzone(config);
    util::Rng rng(kSeed + 2);
    mech::MixZoneReport report;
    (void)mixzone.ApplyWithReport(dataset, rng, report);
    ablation.AddRow({suppress ? "yes" : "no",
                     util::FormatDouble(100.0 * report.SuppressionRatio(), 2),
                     std::to_string(report.swaps_applied),
                     std::to_string(report.zones.size())});
  }
  std::cout << ablation.ToString()
            << "\nexpected shape: suppression cost grows with radius "
               "(\"reasonably small\" zones keep it to a few %); confusion "
               "appears as soon as zones with >= 2 users exist.\n\n";

  // ---- Timing attack: raw vs constant-speed input. ----
  // On raw data, transit times through a zone are heterogeneous (a dweller
  // vs a crosser), so entry/exit timing alone re-links pseudonyms — the
  // classic mix-zone weakness. Stage 1 homogenizes speeds, which is an
  // unadvertised synergy of the paper's two stages.
  std::cout << "--- timing attack vs pipeline stage ---\n";
  core::Table timing_table({"input", "crossings observed", "timing acc"});
  const mech::MixZoneConfig timing_config;  // defaults: 150 m, 600 s
  const mech::MixZone timing_zone(timing_config);
  const attacks::TimingAttack timing_attack;
  const auto timing_row = [&](const std::string& name,
                              const model::Dataset& input) {
    util::Rng rng(kSeed + 9);
    mech::MixZoneReport report;
    const model::Dataset published =
        timing_zone.ApplyWithReport(input, rng, report);
    std::vector<attacks::TimingMatch> matches;
    for (const auto& zone : report.zones) {
      auto crossings = timing_attack.ObserveCrossings(
          input, published, frame, zone.center,
          timing_config.zone_radius_m);
      const auto zone_matches = timing_attack.Match(std::move(crossings));
      matches.insert(matches.end(), zone_matches.begin(),
                     zone_matches.end());
    }
    timing_table.AddRow(
        {name, std::to_string(matches.size()),
         util::FormatDouble(attacks::TimingAttack::Accuracy(matches), 3)});
  };
  timing_row("raw traces", dataset);
  {
    const mech::SpeedSmoothing smoothing;
    util::Rng rng(kSeed + 10);
    timing_row("constant-speed traces", smoothing.Apply(dataset, rng));
  }
  std::cout << timing_table.ToString()
            << "\nexpected shape: timing re-links nearly everything on raw "
               "zones (heterogeneous transits) and degrades on constant-"
               "speed input.\n";
  return 0;
}
