// E3 — spatial distortion per mechanism, as a scenario-engine grid.
//
// Section III's utility claim: "Our main utility goal was to minimally
// distort the location … If the sampling rate is high enough, this
// interpolation should be precise enough to introduce almost no spatial
// inaccuracy." The grid crosses the standard roster with the
// spatial-distortion evaluator: path distortion (geometry-only) stays ~
// metres for ours while the sync columns carry the deliberate
// time-distortion cost. The whole bench is a ScenarioSpec — the engine
// applies every mechanism once and feeds the evaluator zero-copy views.
#include <iostream>

#include "core/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("E3: spatial distortion vs mechanism");
  cli.AddOption("agents", "synthetic world size", "30");
  util::AddRunOptions(cli, 31415);
  if (!cli.Parse(argc, argv)) return 1;
  const util::RunOptions run = util::ApplyRunOptions(cli);

  std::cout << "=== E3: spatial distortion vs mechanism ===\n\n";
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Synthetic(
      static_cast<std::size_t>(cli.GetInt("agents")), 1, run.seed);
  spec.mechanisms = core::StandardRosterSpecs();
  spec.evaluators = {"spatial_distortion"};
  spec.seeds = {run.seed + 1};
  spec.threads = run.threads;

  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  std::cout << report.Pivot("spatial_distortion").ToString() << "\n"
            << engine.stats().ToString() << "\n"
            << "\nexpected shape: ours[speed] path error ~ metres (far "
               "below every noise baseline); its sync error is the "
               "deliberate time-distortion cost; wait4me distorts heavily "
               "on sparse data.\n";
  return 0;
}
