// E3 — spatial distortion per mechanism.
//
// Section III's utility claim: "Our main utility goal was to minimally
// distort the location … If the sampling rate is high enough, this
// interpolation should be precise enough to introduce almost no spatial
// inaccuracy." This bench quantifies both distortion views for every
// mechanism:
//   - path distortion (geometry-only): ours ~ metres (pure interpolation),
//     noise baselines ~ their noise scale;
//   - synchronized distortion (time-aware): ours pays the time-distortion
//     cost here, by design — the paper trades exactly this for POI hiding.
// Fréchet distance gives an order-aware third view.
#include <iostream>

#include "core/experiment.h"
#include "metrics/frechet.h"
#include "metrics/spatial_distortion.h"
#include "synth/population.h"
#include "util/statistics.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 31415;

}  // namespace

int main() {
  using namespace mobipriv;

  std::cout << "=== E3: spatial distortion vs mechanism ===\n\n";
  synth::PopulationConfig population;
  population.agents = 30;
  population.days = 1;
  population.seed = kSeed;
  const synth::SyntheticWorld world(population);
  const model::Dataset& original = world.dataset();

  core::Table table({"mechanism", "path err mean (m)", "path err p95 (m)",
                     "sync err mean (m)", "sync err p95 (m)",
                     "frechet mean (m)"});
  for (const auto& mechanism : core::StandardRoster()) {
    util::Rng rng(kSeed + 1);
    const model::Dataset published = mechanism->Apply(original, rng);
    const auto distortion = metrics::MeasureDistortion(original, published);

    // Mean Fréchet over matched user traces (best-overlap matching).
    std::vector<double> frechets;
    for (const auto& trace : original.traces()) {
      const model::Trace* match = metrics::FindBestMatch(trace, published);
      if (match != nullptr) {
        frechets.push_back(metrics::DiscreteFrechet(trace, *match, 256));
      }
    }
    table.AddRow(
        {mechanism->Name(),
         util::FormatDouble(distortion.path_m.mean, 1),
         util::FormatDouble(distortion.path_m.p95, 1),
         util::FormatDouble(distortion.synchronized_m.mean, 1),
         util::FormatDouble(distortion.synchronized_m.p95, 1),
         util::FormatDouble(util::Mean(frechets), 1)});
  }
  std::cout << table.ToString()
            << "\nexpected shape: ours[speed] path error ~ metres (far "
               "below every noise baseline); its sync error is the "
               "deliberate time-distortion cost; wait4me distorts heavily "
               "on sparse data.\n";
  return 0;
}
