// E7 — analyst utility: range queries, heatmaps, coverage.
//
// Section III: "we acknowledge not all queries can be implemented with our
// solution" — but identity-free spatial analytics should survive almost
// intact. This bench runs a 200-query spatio-temporal workload plus density
// (heatmap cosine) and footprint (coverage Jaccard) comparisons for every
// mechanism.
#include <iostream>

#include "core/anonymizer.h"
#include "core/experiment.h"
#include "mechanisms/wait4me.h"
#include "metrics/coverage.h"
#include "metrics/heatmap.h"
#include "metrics/kdelta.h"
#include "metrics/range_queries.h"
#include "metrics/trajectory_stats.h"
#include "synth/population.h"
#include "util/string_utils.h"

namespace {

constexpr std::uint64_t kSeed = 16180;

}  // namespace

int main() {
  using namespace mobipriv;

  std::cout << "=== E7: analyst utility (range queries / heatmap / "
               "coverage) ===\n\n";
  synth::PopulationConfig population;
  population.agents = 30;
  population.days = 1;
  population.seed = kSeed;
  const synth::SyntheticWorld world(population);
  const model::Dataset& original = world.dataset();

  util::Rng query_rng(kSeed);
  const metrics::RangeQueryConfig query_config;
  const auto queries =
      metrics::SampleQueries(original, query_config, query_rng);
  std::cout << "workload: " << queries.size()
            << " spatio-temporal range queries\n\n";

  core::Table table({"mechanism", "range err median", "range err p95",
                     "heatmap cosine", "coverage jaccard"});
  for (const auto& mechanism : core::StandardRoster()) {
    util::Rng rng(kSeed + 1);
    const model::Dataset published = mechanism->Apply(original, rng);
    const auto report =
        metrics::MeasureRangeQueryError(original, published, queries);
    table.AddRow(
        {mechanism->Name(),
         util::FormatDouble(report.relative_error.median, 3),
         util::FormatDouble(report.relative_error.p95, 3),
         util::FormatDouble(metrics::HeatmapSimilarity(original, published),
                            3),
         util::FormatDouble(metrics::CoverageJaccard(original, published),
                            3)});
  }
  std::cout << table.ToString()
            << "\nexpected shape: ours keeps heatmap/coverage near the top "
               "(locations unchanged, only time distorted and zone points "
               "dropped); heavy-noise baselines lose density structure; "
               "wait4me loses whole traces.\n\n";

  // ---- Trajectory-scale statistics preservation. ----
  std::cout << "--- trajectory statistics (trip length / gyration) ---\n";
  core::Table stats_table({"mechanism", "trip-len EMD (m)",
                           "gyration rel err", "pub trip-len mean (m)"});
  for (const auto& mechanism : core::StandardRoster({0.01})) {
    util::Rng rng(kSeed + 2);
    const model::Dataset published = mechanism->Apply(original, rng);
    const auto report = metrics::CompareTrajectoryStats(original, published);
    stats_table.AddRow(
        {mechanism->Name(),
         util::FormatDouble(report.trip_length_emd, 0),
         util::FormatDouble(report.gyration_relative_error, 3),
         util::FormatDouble(report.trip_length_published.mean, 0)});
  }
  std::cout << stats_table.ToString() << "\n";

  // ---- Herd anonymity the publication provides, measured as (k,delta). --
  std::cout << "--- measured (k,delta)-anonymity (delta = 500 m) ---\n";
  core::Table kdelta_table(
      {"dataset", "mean k", "frac k>=2", "frac k>=4"});
  metrics::KDeltaConfig kdelta_config;
  const auto add_kdelta = [&](const std::string& name,
                              const model::Dataset& dataset) {
    const auto report =
        metrics::MeasureKDeltaAnonymity(dataset, kdelta_config);
    kdelta_table.AddRow(
        {name, util::FormatDouble(report.k_distribution.mean, 2),
         util::FormatDouble(report.FractionWithK(2), 3),
         util::FormatDouble(report.FractionWithK(4), 3)});
  };
  add_kdelta("raw", original);
  {
    util::Rng rng(kSeed + 3);
    mech::Wait4Me w4m;
    add_kdelta("wait4me", w4m.Apply(original, rng));
  }
  {
    util::Rng rng(kSeed + 3);
    const core::Anonymizer anonymizer;
    add_kdelta("ours", anonymizer.Apply(original, rng));
  }
  std::cout << kdelta_table.ToString()
            << "\nexpected shape: wait4me's surviving traces measure at "
               "k >= its configured k (guarantee validated); ours provides "
               "incidental herd anonymity only at shared corridors.\n";
  return 0;
}
