// E7 — analyst utility, as a scenario-engine grid.
//
// Section III: "we acknowledge not all queries can be implemented with our
// solution" — but identity-free spatial analytics should survive almost
// intact. One grid crosses the standard roster with the full analyst
// battery: a 200-query spatio-temporal workload (sampled from the run
// seed), density (heatmap cosine), footprint (coverage Jaccard),
// trajectory statistics and measured (k,delta)-anonymity. The engine
// applies every mechanism once; all five evaluators share its output.
#include <iostream>

#include "core/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("E7: analyst utility (range queries / heatmap / "
                      "coverage / kdelta)");
  cli.AddOption("agents", "synthetic world size", "30");
  util::AddRunOptions(cli, 16180);
  if (!cli.Parse(argc, argv)) return 1;
  const util::RunOptions run = util::ApplyRunOptions(cli);

  std::cout << "=== E7: analyst utility (range queries / heatmap / "
               "coverage) ===\n\n";
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Synthetic(
      static_cast<std::size_t>(cli.GetInt("agents")), 1, run.seed);
  spec.mechanisms = core::StandardRosterSpecs();
  spec.evaluators = {"range_queries", "heatmap", "coverage",
                     "trajectory_stats", "kdelta"};
  spec.seeds = {run.seed + 1};
  spec.threads = run.threads;

  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  std::cout << report.Pivot("range_queries[n=200]").ToString() << "\n";
  std::cout << "--- density / footprint ---\n"
            << report.Pivot("heatmap[cell=200m]").ToString() << "\n"
            << report.Pivot("coverage[cell=200m]").ToString()
            << "\nexpected shape: ours keeps heatmap/coverage near the top "
               "(locations unchanged, only time distorted and zone points "
               "dropped); heavy-noise baselines lose density structure; "
               "wait4me loses whole traces.\n\n";

  std::cout << "--- trajectory statistics (trip length / gyration) ---\n"
            << report.Pivot("trajectory_stats").ToString() << "\n";

  std::cout << "--- measured (k,delta)-anonymity (delta = 500 m) ---\n"
            << report.Pivot("kdelta[delta=500m]").ToString() << "\n"
            << engine.stats().ToString() << "\n"
            << "\nexpected shape: wait4me's surviving traces measure at "
               "k >= its configured k (guarantee validated); ours provides "
               "incidental herd anonymity only at shared corridors.\n";
  return 0;
}
