#!/usr/bin/env python3
"""Regression tripwire over google-benchmark JSON output.

Diffs a benchmark run against a checked-in baseline and FAILS (exit 1)
when a gated benchmark regressed by more than the gate percentage.
Improvements never fail; benchmarks present in only one file are reported
and skipped.

Gated benchmarks (override with --benchmarks REGEX):
    BM_FullPipeline/1000, BM_EngineGrid* (incl. the shard-streamed /
    whole-view pair), BM_GenerateWorld* (streamed world generation),
    and the ingestion ladder (BM_IngestCsv*, BM_ReadColumnar*,
    BM_OpenColumnarMmap*, BM_WriteColumnar*).

Benchmarks carrying a peak_rss_mb user counter (the memory-relevant
rows: I/O ladder, engine grids, out-of-core generation) additionally get
an informational residency delta table — printed always, gated never,
because ru_maxrss is a process high-water mark.

Flakiness control: absolute wall times only compare meaningfully on the
hardware the baseline was recorded on. In the default mode (auto) the gate
ARMS itself only when the run's recorded hardware context (num_cpus,
mhz_per_cpu) matches the baseline's; on foreign hardware it prints the
comparison, warns, and exits 0. Modes (--mode or MOBIPRIV_BENCH_GATE):
    auto     enforce iff hardware contexts match (default)
    require  always enforce (same-machine CI runners, perf labs)
    skip     never fail, report only

Because absolute-time gating disarms on foreign hardware, --invariants
adds RATIO checks that hold on ANY machine and are always enforced:
    * the engine grid beats the independent (non-memoized) grid,
    * mmap open is >= 10x faster than the CSV parse of the same data
      (the columnar format's acceptance bar),
    * the parallel end-to-end run never pays more than the gate
      percentage over the serial run (inline-when-serial contract).
CI runs both: the baseline diff (auto-armed) and the invariants
(always armed) — a regression that flips a structural property fails the
build on every runner; absolute-time drift fails only on baseline-class
hardware.

Refreshing the baseline: rerun the CI bench filter on the reference
machine and copy the JSON over bench/BENCH_ci_baseline.json (or run this
script with --update, which does the copy for you after printing the
diff).

Usage:
    scripts/compare_bench.py bench/BENCH_ci_baseline.json BENCH_ci.json \
        [--gate-pct 25] [--mode auto|require|skip] [--benchmarks REGEX] \
        [--update]
"""

import argparse
import json
import os
import re
import shutil
import sys

DEFAULT_GATED = (
    r"^BM_(FullPipeline/1000|EngineGrid[^/]*/\d+|IngestCsv[^/]*/\d+"
    r"|ReadColumnar/\d+|OpenColumnarMmap[^/]*/\d+|WriteColumnar/\d+"
    r"|GenerateWorld/\d+"
    r"|DistanceBatch[^/]*/\d+|MixZoneEncounterScan/\d+|Kernel[^/]*/\d+)$"
)
# mhz_per_cpu drifts a little run to run on throttling hosts; num_cpus
# must match exactly.
MHZ_TOLERANCE = 0.15


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    times = {}
    rss = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = float(bench["real_time"])
        if "peak_rss_mb" in bench:
            rss[bench["name"]] = float(bench["peak_rss_mb"])
    return doc.get("context", {}), times, rss


def hardware_matches(base_ctx, cur_ctx):
    if base_ctx.get("num_cpus") != cur_ctx.get("num_cpus"):
        return False, "num_cpus %s vs %s" % (
            base_ctx.get("num_cpus"), cur_ctx.get("num_cpus"))
    base_mhz = float(base_ctx.get("mhz_per_cpu") or 0)
    cur_mhz = float(cur_ctx.get("mhz_per_cpu") or 0)
    if base_mhz and cur_mhz:
        drift = abs(cur_mhz - base_mhz) / base_mhz
        if drift > MHZ_TOLERANCE:
            return False, "mhz_per_cpu %.0f vs %.0f (%.0f%% drift)" % (
                base_mhz, cur_mhz, 100 * drift)
    return True, ""


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--gate-pct", type=float, default=25.0,
                        help="fail when a gated benchmark is this many "
                             "percent slower than the baseline (default 25)")
    parser.add_argument("--mode",
                        choices=("auto", "require", "skip"),
                        default=os.environ.get("MOBIPRIV_BENCH_GATE", "auto"),
                        help="gate arming mode (default: auto, or "
                             "MOBIPRIV_BENCH_GATE)")
    parser.add_argument("--benchmarks", default=DEFAULT_GATED,
                        help="regex selecting the gated benchmark names")
    parser.add_argument("--update", action="store_true",
                        help="after reporting, copy current over baseline")
    parser.add_argument("--invariants", action="store_true",
                        help="also enforce hardware-independent ratio "
                             "invariants on the current run (always armed)")
    args = parser.parse_args()

    base_ctx, base, base_rss = load(args.baseline)
    cur_ctx, cur, cur_rss = load(args.current)
    gated = re.compile(args.benchmarks)

    matched, reason = hardware_matches(base_ctx, cur_ctx)
    armed = args.mode == "require" or (args.mode == "auto" and matched)

    regressions = []
    rows = []
    for name in sorted(set(base) | set(cur)):
        if not gated.search(name):
            continue
        if name not in base or name not in cur:
            rows.append((name, "only in %s" %
                         ("current" if name in cur else "baseline")))
            continue
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        delta_pct = 100.0 * (ratio - 1.0)
        verdict = "ok"
        if delta_pct > args.gate_pct:
            verdict = "REGRESSION"
            regressions.append((name, delta_pct))
        elif delta_pct < -args.gate_pct:
            verdict = "improved"
        rows.append((name, "%10.3f -> %10.3f ms  %+7.1f%%  %s" %
                     (base[name], cur[name], delta_pct, verdict)))

    width = max((len(name) for name, _ in rows), default=0)
    print("bench gate: +/-%.0f%% on %d benchmarks (mode=%s, %s)" % (
        args.gate_pct, len(rows), args.mode,
        "armed" if armed else "DISARMED: " + (reason or "skip requested")))
    for name, text in rows:
        print("  %-*s  %s" % (width, name, text))

    if not armed:
        # Foreign hardware (or skip mode): absolute gating is off, but the
        # deltas are still the most useful signal the run produces — print
        # the FULL table (every benchmark in both files, gated or not) so
        # perf drift stays visible in the logs of every runner.
        common = sorted(set(base) & set(cur))
        if common:
            full_width = max(len(name) for name in common)
            print("delta table (gate disarmed; informational, "
                  "%d benchmarks):" % len(common))
            for name in common:
                ratio = cur[name] / base[name] if base[name] > 0 \
                    else float("inf")
                print("  %-*s  %10.3f -> %10.3f ms  %+7.1f%%" % (
                    full_width, name, base[name], cur[name],
                    100.0 * (ratio - 1.0)))

    # Peak RSS rides along as a user counter (peak_rss_mb) on the
    # memory-relevant benchmarks. It is NEVER gated: getrusage reports a
    # process high-water mark, so within one suite run the value is an
    # upper bound shaped by whatever ran earlier — the table exists to
    # make residency drift visible, not to fail builds.
    rss_names = sorted(set(base_rss) | set(cur_rss))
    if rss_names:
        rss_width = max(len(name) for name in rss_names)
        print("peak rss (informational, never gated, %d benchmarks):"
              % len(rss_names))
        for name in rss_names:
            if name in base_rss and name in cur_rss and base_rss[name] > 0:
                delta = 100.0 * (cur_rss[name] / base_rss[name] - 1.0)
                print("  %-*s  %9.1f -> %9.1f MB  %+7.1f%%" % (
                    rss_width, name, base_rss[name], cur_rss[name], delta))
            else:
                side = "current" if name in cur_rss else "baseline"
                value = cur_rss.get(name, base_rss.get(name, 0.0))
                print("  %-*s  %9.1f MB (only in %s)" % (
                    rss_width, name, value, side))

    invariant_failures = []
    invariants_checked = [0]
    if args.invariants:
        def check(name, ok, detail):
            invariants_checked[0] += 1
            print("  invariant %-44s %s  (%s)" %
                  (name, "ok" if ok else "VIOLATED", detail))
            if not ok:
                invariant_failures.append(name)

        for size in ("20", "50", "100", "1000"):
            grid = cur.get("BM_EngineGrid/" + size)
            indep = cur.get("BM_EngineGridIndependent/" + size)
            if grid is not None and indep is not None:
                check("EngineGrid/%s < EngineGridIndependent" % size,
                      grid < indep,
                      "%.1f vs %.1f ms" % (grid, indep))
            serial = cur.get("BM_EndToEndSerial/" + size)
            par = cur.get("BM_EndToEndParallel/" + size)
            if serial is not None and par is not None:
                limit = serial * (1.0 + args.gate_pct / 100.0)
                check("EndToEndParallel/%s <= serial +%d%%" %
                      (size, args.gate_pct),
                      par <= limit,
                      "%.2f vs %.2f ms serial" % (par, serial))
            mmap_open = cur.get("BM_OpenColumnarMmap/" + size)
            csv = cur.get("BM_IngestCsv/" + size)
            if mmap_open is not None and csv is not None:
                check("OpenColumnarMmap/%s >= 10x faster than CSV" % size,
                      mmap_open * 10.0 <= csv,
                      "%.3f vs %.2f ms" % (mmap_open, csv))
        print("invariants: %d checked, %d violated" %
              (invariants_checked[0], len(invariant_failures)))

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print("baseline updated: %s" % args.baseline)

    if invariant_failures:
        print("FAIL: %d structural invariant(s) violated" %
              len(invariant_failures))
        return 1
    if regressions and armed:
        print("FAIL: %d gated benchmark(s) regressed beyond %.0f%%" % (
            len(regressions), args.gate_pct))
        return 1
    if regressions:
        print("note: regressions observed but the gate is disarmed "
              "(foreign hardware or skip mode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
