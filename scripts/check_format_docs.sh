#!/usr/bin/env bash
# Docs lint: the byte-level spec in docs/FORMAT.md must agree with the
# code's format constants. Run from the repo root (CI does); fails with a
# message naming every disagreement.
set -euo pipefail

header=src/model/columnar_file.h
spec=docs/FORMAT.md
fail=0

[[ -f "$header" ]] || { echo "missing $header"; exit 1; }
[[ -f "$spec" ]] || { echo "missing $spec"; exit 1; }

# 1. kColumnarFormatVersion (code) == the version marked "current" in the
#    spec's version table.
code_version=$(grep -oE 'kColumnarFormatVersion = [0-9]+' "$header" | grep -oE '[0-9]+')
doc_version=$(grep -E '^\| *[0-9]+ *\| *current *\|' "$spec" | grep -oE '[0-9]+' | head -1)
if [[ -z "$code_version" ]]; then
  echo "FAIL: kColumnarFormatVersion not found in $header"; fail=1
elif [[ -z "$doc_version" ]]; then
  echo "FAIL: no version marked 'current' in $spec version table"; fail=1
elif [[ "$code_version" != "$doc_version" ]]; then
  echo "FAIL: $header says version $code_version but $spec marks $doc_version as current"
  fail=1
else
  echo "OK: format version $code_version agrees between code and spec"
fi

# 2. The magic bytes documented in the spec match the code's constants.
check_magic() {
  local name=$1 doc_hex=$2
  # Extract the initializer list of the constant and normalize to hex.
  local code_hex
  code_hex=$(awk "/$name = \{/,/\};/" "$header" | tr -d '\n' |
    sed -e "s/.*{//" -e "s/}.*//" | tr ',' '\n' |
    sed -e "s/[[:space:]]//g" -e "/^$/d" |
    while read -r tok || [[ -n "$tok" ]]; do
      case "$tok" in
        0x*) printf '%02X ' "$tok" ;;
        \'\\r\') printf '0D ' ;;
        \'\\n\') printf '0A ' ;;
        *) printf '%02X ' "'${tok//\'/}" ;;
      esac
    done)
  code_hex=${code_hex% }
  if ! grep -qF "$doc_hex" "$spec"; then
    echo "FAIL: $spec does not document magic '$doc_hex' for $name"; fail=1
  elif [[ "$code_hex" != "$doc_hex" ]]; then
    echo "FAIL: $name is '$code_hex' in code but '$doc_hex' in $spec"; fail=1
  else
    echo "OK: $name magic $code_hex agrees between code and spec"
  fi
}
check_magic kColumnarMagic "89 4D 50 43 0D 0A 1A 0A"
check_magic kManifestMagic "89 4D 50 4D 0D 0A 1A 0A"

# 3. The injection-point table in docs/ROBUSTNESS.md must agree with the
#    registered points in util/fault.h — both directions.
fault_header=src/util/fault.h
robustness=docs/ROBUSTNESS.md
[[ -f "$fault_header" ]] || { echo "missing $fault_header"; exit 1; }
[[ -f "$robustness" ]] || { echo "missing $robustness"; exit 1; }

# (join lines first: a long constant name may wrap its string literal)
code_points=$(tr '\n' ' ' < "$fault_header" |
  grep -oE 'inline constexpr std::string_view k[A-Za-z]+ =[[:space:]]*"[^"]+"' |
  grep -oE '"[^"]+"' | tr -d '"' | sort)
doc_points=$(grep -oE '^\| `[a-z.]+`' "$robustness" | tr -d '|` ' | sort)

points_ok=1
while read -r point; do
  [[ -z "$point" ]] && continue
  if ! grep -qx "$point" <<<"$doc_points"; then
    echo "FAIL: injection point '$point' ($fault_header) missing from $robustness table"
    fail=1; points_ok=0
  fi
done <<<"$code_points"
while read -r point; do
  [[ -z "$point" ]] && continue
  if ! grep -qx "$point" <<<"$code_points"; then
    echo "FAIL: $robustness documents injection point '$point' not present in $fault_header"
    fail=1; points_ok=0
  fi
done <<<"$doc_points"
if [[ "$points_ok" == 1 ]]; then
  count=$(wc -l <<<"$code_points")
  echo "OK: $count injection points agree between $fault_header and $robustness"
fi

# 4. The SIMD call-site table in docs/PERFORMANCE.md must agree with the
#    actual `#include "util/simd.h"` sites under src/ — both directions.
#    Every file that consumes the shim needs a documented numerical
#    contract; every table row must point at a file that still uses it.
performance=docs/PERFORMANCE.md
[[ -f "$performance" ]] || { echo "missing $performance"; exit 1; }

simd_users=$(grep -rlF '#include "util/simd.h"' src/ --include='*.h' \
  --include='*.cpp' | grep -v '^src/util/simd.h$' | sort)
doc_sites=$(grep -oE '^\| `src/[a-z_/.]+`' "$performance" | tr -d '|` ' | sort)

sites_ok=1
while read -r site; do
  [[ -z "$site" ]] && continue
  if ! grep -qx "$site" <<<"$doc_sites"; then
    echo "FAIL: $site includes util/simd.h but has no contract row in $performance"
    fail=1; sites_ok=0
  fi
done <<<"$simd_users"
while read -r site; do
  [[ -z "$site" ]] && continue
  if ! grep -qx "$site" <<<"$simd_users"; then
    echo "FAIL: $performance documents SIMD call site '$site' which does not include util/simd.h"
    fail=1; sites_ok=0
  fi
done <<<"$doc_sites"
if [[ "$sites_ok" == 1 ]]; then
  count=$(wc -l <<<"$simd_users")
  echo "OK: $count SIMD call sites agree between src/ and $performance"
fi

# 5. The spec-grammar block in docs/FORMAT.md ("Spec strings and chains",
#    the ```grammar fence) must match the grammar comment at the top of
#    util/spec.h — production for production, whitespace-normalized.
spec_header=src/util/spec.h
[[ -f "$spec_header" ]] || { echo "missing $spec_header"; exit 1; }

normalize_grammar() {
  grep -E ':=|^[[:space:]]*\|[[:space:]]' |
    sed -e 's/[[:space:]]\{1,\}/ /g' -e 's/^ //' -e 's/ $//'
}
code_grammar=$(sed -n 's|^// \{0,\}||p' "$spec_header" | normalize_grammar)
doc_grammar=$(awk '/^```grammar$/{f=1;next} /^```$/{f=0} f' "$spec" |
  normalize_grammar)

if [[ -z "$doc_grammar" ]]; then
  echo "FAIL: no \`\`\`grammar block found in $spec"; fail=1
elif [[ "$code_grammar" != "$doc_grammar" ]]; then
  echo "FAIL: spec grammar differs between $spec_header and $spec:"
  diff <(echo "$code_grammar") <(echo "$doc_grammar") | sed 's/^/  /' || true
  fail=1
else
  count=$(wc -l <<<"$code_grammar")
  echo "OK: $count spec-grammar lines agree between $spec_header and $spec"
fi

exit $fail
