#include "attacks/tracker.h"

#include <gtest/gtest.h>

#include "mechanisms/mixzone.h"

namespace mobipriv::attacks {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// Two straight crossing traces through the origin (as in the mix-zone
/// tests): A west->east, B south->north, both at 2 m/s, crossing at t=500.
model::Dataset CrossingPair() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  const auto a = dataset.InternUser("A");
  const auto b = dataset.InternUser("B");
  model::Trace ta;
  ta.set_user(a);
  model::Trace tb;
  tb.set_user(b);
  for (int i = 0; i <= 100; ++i) {
    const double s = -1000.0 + 20.0 * i;
    const auto t = static_cast<util::Timestamp>(i * 10);
    ta.Append({projection.Unproject({s, 0.0}), t});
    tb.Append({projection.Unproject({0.0, s}), t});
  }
  dataset.AddTrace(std::move(ta));
  dataset.AddTrace(std::move(tb));
  return dataset;
}

TEST(Tracker, FollowsUnmixedTargetsPerfectly) {
  const model::Dataset dataset = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  const MultiTargetTracker tracker;
  // Published == original: the tracker must follow both users correctly.
  const auto outcomes = tracker.TrackThroughZone(
      dataset, dataset, projection, {0.0, 0.0}, 150.0);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.lost);
    EXPECT_EQ(o.followed, o.truth);
    EXPECT_LT(o.error_m, 100.0);
  }
  EXPECT_DOUBLE_EQ(MultiTargetTracker::ConfusionRate(outcomes), 0.0);
}

TEST(Tracker, ScoringUsesPublishedContinuationAsTruth) {
  // Apply a mix-zone; whatever permutation is drawn, the tracker's linear
  // prediction should follow each user's *physical* continuation, and the
  // truth field must point at the published identity carrying it. On
  // straight crossing paths the tracker predicts perfectly, so
  // followed == truth regardless of swapping.
  const model::Dataset original = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  mobipriv::mech::MixZoneConfig config;
  config.zone_radius_m = 150.0;
  const mobipriv::mech::MixZone mixzone(config);
  util::Rng rng(4);
  mobipriv::mech::MixZoneReport report;
  const model::Dataset published =
      mixzone.ApplyWithReport(original, rng, report);
  ASSERT_GE(report.occurrences, 1u);
  const MultiTargetTracker tracker;
  const auto outcomes = tracker.TrackThroughZone(
      original, published, projection, report.zones.front().center, 150.0);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.lost);
    // Straight paths: physics beats mixing, tracker stays on target.
    EXPECT_EQ(o.followed, o.truth);
  }
}

TEST(Tracker, GateDeclaresLostWhenNoPlausibleExit) {
  const model::Dataset original = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  // Published dataset: everything after the zone entry removed.
  model::Dataset published;
  published.InternUser("A");
  published.InternUser("B");
  for (const auto& trace : original.traces()) {
    model::Trace cut;
    cut.set_user(trace.user());
    for (const auto& event : trace) {
      if (event.time < 300) cut.Append(event);
    }
    published.AddTrace(std::move(cut));
  }
  TrackerConfig config;
  config.gate_radius_m = 100.0;
  const MultiTargetTracker tracker(config);
  const auto outcomes = tracker.TrackThroughZone(
      original, published, projection, {0.0, 0.0}, 150.0);
  // Continuations are missing from the publication: the targets are
  // skipped (no ground truth) — nothing to score.
  EXPECT_TRUE(outcomes.empty());
}

TEST(Tracker, TargetsNeverEnteringZoneAreIgnored) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  const auto u = dataset.InternUser("far");
  model::Trace trace;
  trace.set_user(u);
  for (int i = 0; i <= 50; ++i) {
    trace.Append({projection.Unproject({5000.0 + i * 20.0, 5000.0}),
                  static_cast<util::Timestamp>(i * 10)});
  }
  dataset.AddTrace(std::move(trace));
  const MultiTargetTracker tracker;
  EXPECT_TRUE(tracker
                  .TrackThroughZone(dataset, dataset, projection,
                                    {0.0, 0.0}, 150.0)
                  .empty());
}

TEST(Tracker, ConfusionRateCountsMismatches) {
  std::vector<TrackingOutcome> outcomes(4);
  outcomes[0].truth = 1;
  outcomes[0].followed = 1;
  outcomes[1].truth = 1;
  outcomes[1].followed = 2;  // confused
  outcomes[2].truth = 3;
  outcomes[2].followed = 3;
  outcomes[3].lost = true;  // excluded
  EXPECT_NEAR(MultiTargetTracker::ConfusionRate(outcomes), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MultiTargetTracker::ConfusionRate({}), 0.0);
}

}  // namespace
}  // namespace mobipriv::attacks
