#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace mobipriv::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(ParseDouble, Valid) {
  EXPECT_EQ(ParseDouble("3.25"), 3.25);
  EXPECT_EQ(ParseDouble("  -1.5 "), -1.5);
  EXPECT_EQ(ParseDouble("42"), 42.0);
  EXPECT_EQ(ParseDouble("1e3"), 1000.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("1.5 2.5").has_value());
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_EQ(ParseInt("0"), 0);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("4.2").has_value());
  EXPECT_FALSE(ParseInt("12a").has_value());
}

TEST(Join, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace mobipriv::util
