// End-to-end integration test of the paper's Figure 1 narrative on the
// crossing-pair scenario: every claim of the three panels is asserted
// programmatically, including the actual suffix exchange of panel (c) and
// the downstream effect on the attacks.
#include <gtest/gtest.h>

#include "attacks/poi_extraction.h"
#include "attacks/tracker.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "model/stats.h"
#include "privacy/certification.h"
#include "synth/population.h"

namespace mobipriv {
namespace {

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() : world_(synth::MakeCrossingPairScenario(7)) {}
  const synth::SyntheticWorld world_;
};

TEST_F(Figure1Test, PanelA_RawTracesLeakPois) {
  const attacks::PoiExtractor extractor;
  const auto pois = extractor.Extract(world_.dataset());
  // Both users leak at least home and work.
  std::size_t user0 = 0;
  std::size_t user1 = 0;
  for (const auto& poi : pois) {
    (poi.user == 0 ? user0 : user1) += 1;
  }
  EXPECT_GE(user0, 2u);
  EXPECT_GE(user1, 2u);
  // And the raw traces are visibly stop-and-go.
  for (const auto& trace : world_.dataset().traces()) {
    EXPECT_GT(model::SpeedCoefficientOfVariation(trace), 0.5);
  }
}

TEST_F(Figure1Test, PanelB_ConstantSpeedHidesPois) {
  const mech::SpeedSmoothing smoothing;
  util::Rng rng(1);
  const model::Dataset smoothed = smoothing.Apply(world_.dataset(), rng);
  ASSERT_GT(smoothed.TraceCount(), 0u);
  // No POIs extractable.
  const attacks::PoiExtractor extractor;
  EXPECT_TRUE(extractor.Extract(smoothed).empty());
  // Points evenly distributed: near-zero speed and spacing dispersion.
  for (const auto& trace : smoothed.traces()) {
    if (trace.size() < 4) continue;
    EXPECT_LT(model::SpeedCoefficientOfVariation(trace), 0.05);
  }
  // The publication certifier agrees.
  EXPECT_TRUE(privacy::CertifyConstantSpeed(smoothed).Certified());
}

TEST_F(Figure1Test, PanelC_NaturalCrossingBecomesAMixZone) {
  const mech::SpeedSmoothing smoothing;
  util::Rng rng(1);
  const model::Dataset smoothed = smoothing.Apply(world_.dataset(), rng);
  mech::MixZoneConfig config;
  config.zone_radius_m = 200.0;
  config.time_window_s = 900;
  const mech::MixZone mixzone(config);
  mech::MixZoneReport report;
  (void)mixzone.ApplyWithReport(smoothed, rng, report);
  EXPECT_GE(report.occurrences, 1u);
  // The zone sits near the shared commute hub.
  const geo::Point2 hub = world_.universe()
                              .site(world_.profiles()[0].commute_hub)
                              .position;
  const geo::LocalProjection world_frame = world_.projection();
  const geo::LocalProjection zone_frame(smoothed.BoundingBox().Center());
  bool near_hub = false;
  for (const auto& zone : report.zones) {
    const auto zone_geo = zone_frame.Unproject(zone.center);
    const auto hub_geo = world_frame.Unproject(hub);
    if (geo::HaversineDistance(zone_geo, hub_geo) < 500.0) near_hub = true;
  }
  EXPECT_TRUE(near_hub);
}

TEST_F(Figure1Test, PanelC_SwapExchangesSuffixesWhenDrawn) {
  const mech::SpeedSmoothing smoothing;
  util::Rng rng(1);
  const model::Dataset smoothed = smoothing.Apply(world_.dataset(), rng);
  mech::MixZoneConfig config;
  config.zone_radius_m = 200.0;
  config.time_window_s = 900;
  const mech::MixZone mixzone(config);
  // Find a seed with a swap; geometric in the number of occurrences.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    util::Rng zone_rng(seed);
    mech::MixZoneReport report;
    const model::Dataset published =
        mixzone.ApplyWithReport(smoothed, zone_rng, report);
    if (report.swaps_applied == 0) continue;
    // Event conservation still holds.
    EXPECT_EQ(published.EventCount() + report.suppressed_events,
              smoothed.EventCount());
    // A swap occurred: at least one swapped occurrence recorded with both
    // users in its anonymity set.
    bool found_swapped = false;
    for (const auto& occurrence : report.occurrence_details) {
      if (occurrence.swapped) {
        found_swapped = true;
        EXPECT_EQ(occurrence.users.size(), 2u);
      }
    }
    EXPECT_TRUE(found_swapped);
    return;
  }
  FAIL() << "no swap drawn in 64 attempts (p < 2^-20)";
}

TEST_F(Figure1Test, FullStoryAttackComparison) {
  // Raw: the tracker follows both users through the crossing flawlessly.
  const geo::LocalProjection frame(
      world_.dataset().BoundingBox().Center());
  const attacks::MultiTargetTracker tracker;
  const geo::Point2 hub_world = world_.universe()
                                    .site(world_.profiles()[0].commute_hub)
                                    .position;
  const geo::Point2 hub =
      frame.Project(world_.projection().Unproject(hub_world));
  const auto raw_outcomes = tracker.TrackThroughZone(
      world_.dataset(), world_.dataset(), frame, hub, 200.0);
  EXPECT_DOUBLE_EQ(attacks::MultiTargetTracker::ConfusionRate(raw_outcomes),
                   0.0);
}

}  // namespace
}  // namespace mobipriv
