#include "geo/polyline.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mobipriv::geo {
namespace {

std::vector<Point2> LShape() {
  // Two segments of 100 m each.
  return {{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}};
}

TEST(PolylineLength, Basic) {
  EXPECT_DOUBLE_EQ(PolylineLength({}), 0.0);
  EXPECT_DOUBLE_EQ(PolylineLength({{1.0, 1.0}}), 0.0);
  EXPECT_DOUBLE_EQ(PolylineLength(LShape()), 200.0);
}

TEST(CumulativeLengths, Basic) {
  const auto cum = CumulativeLengths(LShape());
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 0.0);
  EXPECT_DOUBLE_EQ(cum[1], 100.0);
  EXPECT_DOUBLE_EQ(cum[2], 200.0);
  EXPECT_TRUE(CumulativeLengths({}).empty());
}

TEST(PointAtLength, InterpolatesAndClamps) {
  const auto path = LShape();
  const auto cum = CumulativeLengths(path);
  EXPECT_EQ(PointAtLength(path, cum, -5.0), (Point2{0.0, 0.0}));
  EXPECT_EQ(PointAtLength(path, cum, 0.0), (Point2{0.0, 0.0}));
  EXPECT_EQ(PointAtLength(path, cum, 50.0), (Point2{50.0, 0.0}));
  EXPECT_EQ(PointAtLength(path, cum, 150.0), (Point2{100.0, 50.0}));
  EXPECT_EQ(PointAtLength(path, cum, 999.0), (Point2{100.0, 100.0}));
}

TEST(PointAtLength, ZeroLengthSegments) {
  const std::vector<Point2> path{{0.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}};
  EXPECT_EQ(PointAtLength(path, 5.0), (Point2{5.0, 0.0}));
}

TEST(ResampleUniform, ExactArcSpacing) {
  const auto out = ResampleUniform(LShape(), 30.0);
  // 200 m / 30 m -> ceil = 7 intervals of 200/7 m of *arc length* each.
  ASSERT_EQ(out.size(), 8u);
  const double expected = 200.0 / 7.0;
  // Verify via arc length along the original path: each output point's
  // distance along the L equals k * 200/7.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double arc =
        out[i].y > 0.0 ? 100.0 + out[i].y : out[i].x;  // position on the L
    EXPECT_NEAR(arc, expected * static_cast<double>(i), 1e-9);
  }
  // On straight runs (no corner between points) chord == arc spacing.
  EXPECT_NEAR(Distance(out[0], out[1]), expected, 1e-9);
  EXPECT_EQ(out.front(), (Point2{0.0, 0.0}));
  EXPECT_EQ(out.back(), (Point2{100.0, 100.0}));
}

TEST(ChordResample, ExactChordSpacingOnStraightLine) {
  const std::vector<Point2> line{{0.0, 0.0}, {100.0, 0.0}};
  const auto out = ChordResample(line, 30.0);
  // Points at 0, 30, 60, 90, plus the preserved endpoint at 100.
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_NEAR(Distance(out[i - 1], out[i]), 30.0, 1e-9);
  }
  EXPECT_NEAR(Distance(out[3], out[4]), 10.0, 1e-9);  // final short hop
  EXPECT_EQ(out.back(), (Point2{100.0, 0.0}));
}

TEST(ChordResample, ChordSpacingHoldsAcrossCorners) {
  const auto out = ChordResample(LShape(), 30.0);
  ASSERT_GE(out.size(), 3u);
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_NEAR(Distance(out[i - 1], out[i]), 30.0, 1e-9)
        << "gap " << i << " is not one chord";
  }
  EXPECT_LE(Distance(out[out.size() - 2], out.back()), 30.0 + 1e-9);
}

TEST(ChordResample, AbsorbsJitterExcursions) {
  // A long dwell: hundreds of small wiggles within 10 m of one spot,
  // between two genuine 100 m moves. Arc length of the wiggle is huge but
  // no wiggle point is ever 30 m from the anchor.
  std::vector<Point2> path{{0.0, 0.0}, {100.0, 0.0}};
  for (int i = 0; i < 300; ++i) {
    path.push_back({100.0 + ((i % 2 == 0) ? 8.0 : -8.0),
                    (i % 3 == 0) ? 6.0 : -6.0});
  }
  path.push_back({200.0, 0.0});
  const auto out = ChordResample(path, 30.0);
  // The wiggle contributes at most a couple of points (its diameter is
  // 16 m < 30 m); without absorption it would contribute ~100 points
  // (total wiggle arc length ~ 4 km).
  EXPECT_LE(out.size(), 10u);
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_NEAR(Distance(out[i - 1], out[i]), 30.0, 1e-9);
  }
}

TEST(ChordResample, DegenerateInputs) {
  EXPECT_TRUE(ChordResample({}, 10.0).empty());
  const auto single = ChordResample({{1.0, 2.0}}, 10.0);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single.front(), (Point2{1.0, 2.0}));
  // All-identical points: one output point, no duplicate endpoint.
  const auto zero = ChordResample({{5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}}, 10.0);
  EXPECT_EQ(zero.size(), 1u);
}

TEST(ChordResample, SpacingLargerThanPath) {
  const auto out = ChordResample(LShape(), 1000.0);
  // Anchor never gets 1000 m away: only first + last survive.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front(), (Point2{0.0, 0.0}));
  EXPECT_EQ(out.back(), (Point2{100.0, 100.0}));
}

TEST(ChordResample, ClosedLoopKeepsReturnPoint) {
  // Out-and-back: ends where it starts.
  const std::vector<Point2> loop{{0.0, 0.0}, {100.0, 0.0}, {0.0, 0.0}};
  const auto out = ChordResample(loop, 40.0);
  EXPECT_EQ(out.back(), (Point2{0.0, 0.0}));
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_NEAR(Distance(out[i - 1], out[i]), 40.0, 1e-9);
  }
}

TEST(ResampleUniform, SpacingLargerThanLength) {
  const auto out = ResampleUniform(LShape(), 1000.0);
  // One interval: endpoints only.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front(), (Point2{0.0, 0.0}));
  EXPECT_EQ(out.back(), (Point2{100.0, 100.0}));
}

TEST(ResampleUniform, DegenerateInputs) {
  EXPECT_TRUE(ResampleUniform({}, 10.0).empty());
  const auto single = ResampleUniform({{3.0, 4.0}}, 10.0);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single.front(), (Point2{3.0, 4.0}));
  // All points identical: zero-length path.
  const auto zero =
      ResampleUniform({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}}, 10.0);
  ASSERT_EQ(zero.size(), 2u);
  EXPECT_EQ(zero.front(), zero.back());
}

TEST(ResampleUniform, PointsLieOnOriginalPath) {
  const auto out = ResampleUniform(LShape(), 17.0);
  for (const auto& p : out) {
    EXPECT_LT(DistanceToPolyline(LShape(), p), 1e-9);
  }
}

TEST(ResampleCount, ExactCount) {
  const auto out = ResampleCount(LShape(), 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front(), (Point2{0.0, 0.0}));
  EXPECT_EQ(out.back(), (Point2{100.0, 100.0}));
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_NEAR(Distance(out[i - 1], out[i]), 50.0, 1e-9);
  }
}

TEST(SimplifyRdp, RemovesCollinearPoints) {
  const std::vector<Point2> path{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}, {10.0, 0.0}};
  const auto out = SimplifyRdp(path, 0.1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front(), path.front());
  EXPECT_EQ(out.back(), path.back());
}

TEST(SimplifyRdp, KeepsSignificantCorner) {
  const auto out = SimplifyRdp(LShape(), 1.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], (Point2{100.0, 0.0}));
}

TEST(SimplifyRdp, ShortPathsUntouched) {
  const std::vector<Point2> two{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_EQ(SimplifyRdp(two, 0.5), two);
}

TEST(NearestVertex, Basic) {
  const auto idx = NearestVertex(LShape(), {95.0, 10.0});
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(NearestVertex({}, {0.0, 0.0}).has_value());
}

TEST(DistanceToPolyline, SegmentsNotJustVertices) {
  // Closest approach is interior to the first segment.
  EXPECT_DOUBLE_EQ(DistanceToPolyline(LShape(), {50.0, 7.0}), 7.0);
  EXPECT_DOUBLE_EQ(DistanceToPolyline({{2.0, 2.0}}, {2.0, 5.0}), 3.0);
}

}  // namespace
}  // namespace mobipriv::geo
