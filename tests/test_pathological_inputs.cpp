// Failure injection: every mechanism, attack and metric must survive
// pathological datasets without crashing, hanging or producing invalid
// output — all-duplicate points, zero-duration traces, single events,
// backwards-ordered ingestion, extreme coordinates, huge time gaps.
#include <gtest/gtest.h>

#include "attacks/home_work.h"
#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "attacks/speed_fingerprint.h"
#include "core/experiment.h"
#include "core/report.h"
#include "metrics/coverage.h"
#include "metrics/heatmap.h"
#include "metrics/kdelta.h"
#include "metrics/spatial_distortion.h"
#include "metrics/trajectory_stats.h"
#include "mechanisms/mixzone.h"
#include "privacy/certification.h"

namespace mobipriv {
namespace {

/// The zoo of pathological datasets, each with a name for diagnostics.
std::vector<std::pair<std::string, model::Dataset>> PathologicalZoo() {
  std::vector<std::pair<std::string, model::Dataset>> zoo;

  zoo.emplace_back("empty", model::Dataset{});

  {
    model::Dataset d;
    d.AddTraceForUser("u", {{{45.764, 4.8357}, 1000}});
    zoo.emplace_back("single_event", std::move(d));
  }
  {
    model::Dataset d;
    // 100 identical fixes: zero length, positive duration.
    std::vector<model::Event> events;
    for (int i = 0; i < 100; ++i) {
      events.push_back({{45.764, 4.8357},
                        static_cast<util::Timestamp>(1000 + i * 30)});
    }
    d.AddTraceForUser("u", std::move(events));
    zoo.emplace_back("all_duplicates", std::move(d));
  }
  {
    model::Dataset d;
    // Zero duration: all fixes share one timestamp, positions differ.
    std::vector<model::Event> events;
    for (int i = 0; i < 50; ++i) {
      events.push_back({{45.764 + 0.001 * i, 4.8357}, 1000});
    }
    d.AddTraceForUser("u", std::move(events));
    zoo.emplace_back("zero_duration", std::move(d));
  }
  {
    model::Dataset d;
    // Extreme but valid coordinates near the antimeridian and poles.
    d.AddTraceForUser("u", {{{89.9, 179.9}, 0},
                            {{89.8, -179.9}, 60},
                            {{-89.9, 0.0}, 120}});
    zoo.emplace_back("extreme_coordinates", std::move(d));
  }
  {
    model::Dataset d;
    // Decade-long gap between two normal sessions.
    std::vector<model::Event> events;
    for (int i = 0; i < 20; ++i) {
      events.push_back({{45.764 + 0.0005 * i, 4.8357},
                        static_cast<util::Timestamp>(i * 60)});
    }
    for (int i = 0; i < 20; ++i) {
      events.push_back({{45.764 + 0.0005 * i, 4.8357},
                        static_cast<util::Timestamp>(315360000 + i * 60)});
    }
    d.AddTraceForUser("u", std::move(events));
    zoo.emplace_back("decade_gap", std::move(d));
  }
  {
    model::Dataset d;
    // Two users at exactly the same place and times (perfect co-location).
    std::vector<model::Event> events;
    for (int i = 0; i < 30; ++i) {
      events.push_back({{45.764 + 0.0002 * i, 4.8357},
                        static_cast<util::Timestamp>(i * 30)});
    }
    d.AddTraceForUser("a", events);
    d.AddTraceForUser("b", std::move(events));
    zoo.emplace_back("perfect_twins", std::move(d));
  }
  return zoo;
}

TEST(PathologicalInputs, AllMechanismsSurviveTheZoo) {
  for (const auto& mechanism : core::StandardRoster({0.01})) {
    for (const auto& [name, dataset] : PathologicalZoo()) {
      util::Rng rng(1);
      model::Dataset output;
      ASSERT_NO_THROW(output = mechanism->Apply(dataset, rng))
          << mechanism->Name() << " on " << name;
      for (const auto& trace : output.traces()) {
        EXPECT_TRUE(trace.IsTimeOrdered())
            << mechanism->Name() << " on " << name;
        for (const auto& event : trace) {
          EXPECT_TRUE(event.position.IsValid())
              << mechanism->Name() << " on " << name;
        }
      }
    }
  }
}

TEST(PathologicalInputs, AttacksSurviveTheZoo) {
  const attacks::PoiExtractor extractor;
  const attacks::ReidentificationAttack reident;
  const attacks::HomeWorkAttack home_work;
  const attacks::SpeedFingerprintAttack fingerprint;
  for (const auto& [name, dataset] : PathologicalZoo()) {
    SCOPED_TRACE(name);
    const auto frame = attacks::DatasetProjection(dataset);
    ASSERT_NO_THROW((void)extractor.Extract(dataset, frame));
    ASSERT_NO_THROW({
      const auto profiles = reident.BuildProfiles(dataset, frame);
      (void)reident.Attack(profiles, dataset, frame);
    });
    ASSERT_NO_THROW((void)home_work.Infer(dataset, frame));
    ASSERT_NO_THROW({
      const auto profiles = fingerprint.BuildProfiles(dataset);
      (void)fingerprint.Attack(profiles, dataset);
    });
  }
}

TEST(PathologicalInputs, MetricsSurviveTheZoo) {
  for (const auto& [name, dataset] : PathologicalZoo()) {
    SCOPED_TRACE(name);
    ASSERT_NO_THROW((void)metrics::MeasureDistortion(dataset, dataset));
    ASSERT_NO_THROW((void)metrics::CoverageJaccard(dataset, dataset));
    ASSERT_NO_THROW((void)metrics::HeatmapSimilarity(dataset, dataset));
    ASSERT_NO_THROW((void)metrics::MeasureKDeltaAnonymity(dataset));
    ASSERT_NO_THROW((void)metrics::CompareTrajectoryStats(dataset, dataset));
    ASSERT_NO_THROW((void)privacy::CertifyConstantSpeed(dataset));
  }
}

TEST(PathologicalInputs, MetricsOnSelfAreReflexive) {
  // Identity comparisons must score "identical" even for weird data.
  for (const auto& [name, dataset] : PathologicalZoo()) {
    SCOPED_TRACE(name);
    EXPECT_DOUBLE_EQ(metrics::CoverageJaccard(dataset, dataset), 1.0);
    if (dataset.EventCount() > 0) {
      EXPECT_NEAR(metrics::HeatmapSimilarity(dataset, dataset), 1.0, 1e-9);
    }
    // Synchronized distortion is reflexive except for physically
    // impossible traces holding several positions at one instant —
    // interpolation "at time t" is ambiguous there by definition.
    if (name != "zero_duration") {
      const auto distortion = metrics::MeasureDistortion(dataset, dataset);
      EXPECT_DOUBLE_EQ(distortion.synchronized_m.max, 0.0);
    }
  }
}

TEST(PathologicalInputs, PerfectTwinsMixEverywhere) {
  // Two identical traces are one continuous encounter: the mix-zone stage
  // must handle a trace that never leaves the zone (suppressing it
  // entirely is legal).
  for (const auto& [name, dataset] : PathologicalZoo()) {
    if (name != "perfect_twins") continue;
    mech::MixZone mixzone;
    util::Rng rng(1);
    mech::MixZoneReport report;
    const auto output = mixzone.ApplyWithReport(dataset, rng, report);
    EXPECT_GT(report.encounters, 0u);
    EXPECT_EQ(output.EventCount() + report.suppressed_events,
              dataset.EventCount());
  }
}

}  // namespace
}  // namespace mobipriv
