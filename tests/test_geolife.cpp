#include "model/geolife.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "model/io.h"

namespace mobipriv::model {
namespace {

namespace fs = std::filesystem;

constexpr const char* kPltHeader =
    "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
    "0,2,255,My Track,0,0,2,8421376\n0\n";

class GeolifeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("mobipriv_geolife_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    // Two users, user 000 with two files, user 001 with one.
    WritePlt("000", "20090422.plt",
             "39.906631,116.385564,0,492,39925.44,2009-04-22,10:34:31\n"
             "39.906554,116.385625,0,492,39925.44,2009-04-22,10:34:33\n");
    WritePlt("000", "20090423.plt",
             "39.907000,116.386000,0,492,39926.44,2009-04-23,08:00:00\n");
    WritePlt("001", "20090501.plt",
             "39.900000,116.380000,0,492,39934.00,2009-05-01,12:00:00\n"
             "39.900100,116.380100,0,492,39934.00,2009-05-01,12:00:05\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  void WritePlt(const std::string& user, const std::string& file,
                const std::string& rows) {
    const fs::path dir = root_ / user / "Trajectory";
    fs::create_directories(dir);
    std::ofstream out(dir / file);
    out << kPltHeader << rows;
  }

  fs::path root_;
};

TEST_F(GeolifeFixture, LoadsAllUsersAndFiles) {
  const Dataset dataset = LoadGeolife(root_.string());
  EXPECT_EQ(dataset.UserCount(), 2u);
  EXPECT_EQ(dataset.TraceCount(), 3u);  // one per PLT file
  EXPECT_EQ(dataset.EventCount(), 5u);
  const auto user0 = dataset.FindUser("000");
  ASSERT_TRUE(user0.has_value());
  EXPECT_EQ(dataset.TracesOfUser(*user0).size(), 2u);
}

TEST_F(GeolifeFixture, MaxUsersLimit) {
  GeolifeLoadOptions options;
  options.max_users = 1;
  const Dataset dataset = LoadGeolife(root_.string(), options);
  EXPECT_EQ(dataset.UserCount(), 1u);
  EXPECT_TRUE(dataset.FindUser("000").has_value());  // lexicographic first
  EXPECT_FALSE(dataset.FindUser("001").has_value());
}

TEST_F(GeolifeFixture, MaxFilesPerUserLimit) {
  GeolifeLoadOptions options;
  options.max_files_per_user = 1;
  const Dataset dataset = LoadGeolife(root_.string(), options);
  const auto user0 = dataset.FindUser("000");
  ASSERT_TRUE(user0.has_value());
  EXPECT_EQ(dataset.TracesOfUser(*user0).size(), 1u);
}

TEST_F(GeolifeFixture, ParsesTimestampsAsUtc) {
  const Dataset dataset = LoadGeolife(root_.string());
  const auto user0 = dataset.FindUser("000");
  ASSERT_TRUE(user0.has_value());
  const auto& trace = dataset.traces()[dataset.TracesOfUser(*user0)[0]];
  EXPECT_EQ(trace.back().time - trace.front().time, 2);
}

TEST(Geolife, MissingRootThrows) {
  EXPECT_THROW(LoadGeolife("/nonexistent/geolife/root"), IoError);
}

TEST_F(GeolifeFixture, SkipsUsersWithoutTrajectoryDir) {
  fs::create_directories(root_ / "002");  // no Trajectory subdir
  const Dataset dataset = LoadGeolife(root_.string());
  EXPECT_EQ(dataset.UserCount(), 2u);
}

}  // namespace
}  // namespace mobipriv::model
