#include "metrics/poi_metrics.h"

#include <gtest/gtest.h>

namespace mobipriv::metrics {
namespace {

TEST(PoiScore, RecallPrecisionF1) {
  PoiScore score;
  score.true_pois = 10;
  score.extracted = 8;
  score.matched_true = 6;
  score.matched_extracted = 6;
  EXPECT_DOUBLE_EQ(score.Recall(), 0.6);
  EXPECT_DOUBLE_EQ(score.Precision(), 0.75);
  EXPECT_NEAR(score.F1(), 2.0 * 0.6 * 0.75 / 1.35, 1e-12);
  EXPECT_FALSE(score.ToString().empty());
}

TEST(PoiScore, ZeroDenominators) {
  const PoiScore score;
  EXPECT_DOUBLE_EQ(score.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(score.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(score.F1(), 0.0);
}

TEST(DistinctTruePlaces, DeduplicatesByUserAndPoi) {
  const geo::LocalProjection world({45.7640, 4.8357});
  const geo::LocalProjection attack({45.7650, 4.8360});
  std::vector<synth::GroundTruthVisit> visits;
  // User 0 visits POI 3 twice, POI 4 once; user 1 visits POI 3 once.
  visits.push_back({0, 3, {100.0, 100.0}, 0, 10});
  visits.push_back({0, 3, {100.0, 100.0}, 50, 60});
  visits.push_back({0, 4, {500.0, 100.0}, 20, 30});
  visits.push_back({1, 3, {100.0, 100.0}, 0, 10});
  const auto places = DistinctTruePlaces(visits, world, attack);
  EXPECT_EQ(places.size(), 3u);
}

TEST(DistinctTruePlaces, ReprojectsBetweenFrames) {
  const geo::LocalProjection world({45.7640, 4.8357});
  const geo::LocalProjection attack({45.7640, 4.8357});  // same frame
  std::vector<synth::GroundTruthVisit> visits;
  visits.push_back({0, 1, {250.0, -125.0}, 0, 10});
  const auto places = DistinctTruePlaces(visits, world, attack);
  ASSERT_EQ(places.size(), 1u);
  EXPECT_NEAR(places[0].position.x, 250.0, 0.01);
  EXPECT_NEAR(places[0].position.y, -125.0, 0.01);
}

TEST(ScorePoiExtraction, MatchesWithinRadiusSameUser) {
  std::vector<TruePlace> truth{{0, {0.0, 0.0}}, {0, {5000.0, 0.0}},
                               {1, {0.0, 0.0}}};
  std::vector<attacks::ExtractedPoi> extracted;
  extracted.push_back({0, {50.0, 0.0}, 1, 900});       // matches truth[0]
  extracted.push_back({0, {9000.0, 0.0}, 1, 900});     // false positive
  extracted.push_back({1, {5000.0, 0.0}, 1, 900});     // wrong user -> FP
  const PoiScore score = ScorePoiExtraction(extracted, truth);
  EXPECT_EQ(score.true_pois, 3u);
  EXPECT_EQ(score.extracted, 3u);
  EXPECT_EQ(score.matched_true, 1u);
  EXPECT_EQ(score.matched_extracted, 1u);
  EXPECT_NEAR(score.Recall(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.Precision(), 1.0 / 3.0, 1e-12);
}

TEST(ScorePoiExtraction, RadiusBoundary) {
  std::vector<TruePlace> truth{{0, {0.0, 0.0}}};
  PoiMatchConfig config;
  config.match_radius_m = 100.0;
  std::vector<attacks::ExtractedPoi> inside;
  inside.push_back({0, {100.0, 0.0}, 1, 900});
  EXPECT_EQ(ScorePoiExtraction(inside, truth, config).matched_true, 1u);
  std::vector<attacks::ExtractedPoi> outside;
  outside.push_back({0, {100.1, 0.0}, 1, 900});
  EXPECT_EQ(ScorePoiExtraction(outside, truth, config).matched_true, 0u);
}

TEST(ScorePoiExtraction, EmptyInputs) {
  const PoiScore both = ScorePoiExtraction({}, {});
  EXPECT_EQ(both.true_pois, 0u);
  EXPECT_DOUBLE_EQ(both.Recall(), 0.0);
  std::vector<TruePlace> truth{{0, {0.0, 0.0}}};
  const PoiScore none = ScorePoiExtraction({}, truth);
  EXPECT_EQ(none.matched_true, 0u);
  EXPECT_DOUBLE_EQ(none.Recall(), 0.0);
}

}  // namespace
}  // namespace mobipriv::metrics
