// The out-of-core engine path: shard-streamed execution of a grid over a
// SaveShards directory must be a pure resource strategy — same Report,
// byte for byte, as the whole-view DAG, at any thread count, with no
// hidden materializations. These tests pin that equivalence plus the
// eligibility gating around it.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/engine.h"
#include "core/scenario.h"
#include "model/sharded_dataset.h"
#include "model/views.h"
#include "synth/population.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 24;
    config.days = 1;
    config.seed = 99;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

/// Shards World() into `shards` under a fresh directory, returns its path.
std::string MakeShardDir(const std::string& name, std::size_t shards) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  model::ShardedDataset::Partition(World(), shards).SaveShards(dir.string());
  return dir.string();
}

/// A grid every streamed-path precondition accepts: single-stage per-trace
/// mechanisms, foldable evaluators only.
core::ScenarioSpec FoldableSpec() {
  core::ScenarioSpec spec;
  spec.mechanisms = {"gaussian", "geo_ind[eps=0.01]", "cloaking"};
  spec.evaluators = {"trajectory_stats", "range_queries[n=32]"};
  spec.seeds = {5, 9};
  return spec;
}

TEST(ShardStream, ProbeAcceptsSaveShardsLayout) {
  const std::string dir = MakeShardDir("mobipriv_stream_probe", 4);
  const auto plan = core::ProbeShardStream(dir);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->shard_count, 4u);
  EXPECT_EQ(plan->global_names.size(), World().UserCount());
  EXPECT_EQ(plan->total_traces, World().TraceCount());
  // Canonical-order restriction: strictly ascending origin per shard.
  for (const auto& run : plan->origin) {
    for (std::size_t i = 1; i < run.size(); ++i) {
      EXPECT_LT(run[i - 1], run[i]);
    }
  }
  fs::remove_all(dir);
}

TEST(ShardStream, ReportByteIdenticalToWholeView) {
  const std::string dir = MakeShardDir("mobipriv_stream_identical", 6);

  // Reference: the whole-view DAG over the borrowed dataset.
  core::ScenarioSpec spec = FoldableSpec();
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  core::ScenarioEngine whole(spec);
  const std::string reference = whole.Run().ToCsv();
  EXPECT_EQ(whole.stats().streamed_shards, 0u);

  // Streamed: same grid over the shard dir, at two thread counts. The
  // full-materialize and trace-copy counters stay flat — out-of-core
  // execution must not sneak a dataset (or per-trace AoS copies) into
  // memory to get its answer.
  for (const std::size_t threads : {1u, 4u}) {
    core::ScenarioSpec streamed_spec = FoldableSpec();
    streamed_spec.source = core::DatasetSourceSpec::ShardDir(dir);
    streamed_spec.threads = threads;
    const std::size_t materialized_before = model::FullMaterializeCount();
    const std::size_t copies_before = model::TraceCopyCount();
    core::ScenarioEngine streamed(std::move(streamed_spec));
    const core::Report report = streamed.Run();
    EXPECT_EQ(streamed.stats().streamed_shards, 6u) << "threads=" << threads;
    EXPECT_TRUE(report.AllOk());
    EXPECT_EQ(report.ToCsv(), reference) << "threads=" << threads;
    EXPECT_EQ(model::FullMaterializeCount(), materialized_before);
    EXPECT_EQ(model::TraceCopyCount(), copies_before);
  }
  fs::remove_all(dir);
}

TEST(ShardStream, FallsBackOnNonFoldableEvaluator) {
  const std::string dir = MakeShardDir("mobipriv_stream_fallback_eval", 3);
  core::ScenarioSpec spec = FoldableSpec();
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.evaluators.push_back("coverage");  // whole-view only
  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  EXPECT_EQ(engine.stats().streamed_shards, 0u);
  EXPECT_TRUE(report.AllOk());
  fs::remove_all(dir);
}

TEST(ShardStream, FallsBackOnCrossTraceMechanism) {
  const std::string dir = MakeShardDir("mobipriv_stream_fallback_mech", 3);
  core::ScenarioSpec spec = FoldableSpec();
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.mechanisms.push_back("mixzone");  // cross-trace: needs the whole view
  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  EXPECT_EQ(engine.stats().streamed_shards, 0u);
  EXPECT_TRUE(report.AllOk());
  fs::remove_all(dir);
}

TEST(ShardStream, FallsBackOnChainRow) {
  const std::string dir = MakeShardDir("mobipriv_stream_fallback_chain", 3);
  core::ScenarioSpec spec = FoldableSpec();
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.mechanisms = {"geo_ind[eps=0.01]|cloaking"};  // multi-stage
  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  EXPECT_EQ(engine.stats().streamed_shards, 0u);
  EXPECT_TRUE(report.AllOk());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mobipriv
