#include "util/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mobipriv::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.Count(), 0u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.Count(), 1u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(rs.Stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.Min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.Sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 40 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(Percentile, SortedInterpolation) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(values, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(values, 1.0 / 3.0), 20.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> values{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 25.0);
}

TEST(Percentile, ClampsQuantile) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(values, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(values, 1.5), 2.0);
}

TEST(Percentile, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(MeanFn, Basic) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{2.0, 4.0}), 3.0);
}

TEST(SummaryOf, EmptyInput) {
  const Summary s = Summary::Of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummaryOf, Basic) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const Summary s = Summary::Of(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bin 0
  h.Add(9.9);    // bin 4
  h.Add(-3.0);   // clamped to bin 0
  h.Add(100.0);  // clamped to bin 4
  h.Add(5.0);    // bin 2
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.CountInBin(0), 2u);
  EXPECT_EQ(h.CountInBin(2), 1u);
  EXPECT_EQ(h.CountInBin(4), 2u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.BinLower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLower(4), 8.0);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.0);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(Histogram, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.5);
  h.Add(1.5);
  const std::string rendered = h.ToString(10);
  EXPECT_NE(rendered.find('#'), std::string::npos);
  EXPECT_NE(rendered.find('2'), std::string::npos);
}

}  // namespace
}  // namespace mobipriv::util
