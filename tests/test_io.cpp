#include "model/io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mobipriv::model {
namespace {

TEST(ReadCsv, BasicWithHeader) {
  std::istringstream in(
      "user,lat,lng,timestamp\n"
      "alice,45.764000,4.835700,100\n"
      "alice,45.765000,4.836000,200\n"
      "bob,45.700000,4.800000,150\n");
  const Dataset dataset = ReadCsv(in);
  EXPECT_EQ(dataset.UserCount(), 2u);
  EXPECT_EQ(dataset.TraceCount(), 2u);
  EXPECT_EQ(dataset.EventCount(), 3u);
  const auto alice = dataset.FindUser("alice");
  ASSERT_TRUE(alice.has_value());
  const auto traces = dataset.TracesOfUser(*alice);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(dataset.traces()[traces[0]].size(), 2u);
}

TEST(ReadCsv, WithoutHeader) {
  std::istringstream in("alice,45.0,4.0,100\n");
  const Dataset dataset = ReadCsv(in);
  EXPECT_EQ(dataset.EventCount(), 1u);
}

TEST(ReadCsv, HumanReadableTimestamps) {
  std::istringstream in("u,45.0,4.0,1970-01-01 00:01:40\n");
  const Dataset dataset = ReadCsv(in);
  ASSERT_EQ(dataset.EventCount(), 1u);
  EXPECT_EQ(dataset.traces().front().front().time, 100);
}

TEST(ReadCsv, SortsEventsByTime) {
  std::istringstream in(
      "u,45.0,4.0,300\n"
      "u,45.1,4.0,100\n");
  const Dataset dataset = ReadCsv(in);
  EXPECT_TRUE(dataset.traces().front().IsTimeOrdered());
  EXPECT_EQ(dataset.traces().front().front().time, 100);
}

TEST(ReadCsv, InterleavedUsersGrouped) {
  std::istringstream in(
      "a,45.0,4.0,1\n"
      "b,45.0,4.0,2\n"
      "a,45.0,4.0,3\n");
  const Dataset dataset = ReadCsv(in);
  EXPECT_EQ(dataset.TraceCount(), 2u);
  const auto a = dataset.FindUser("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(dataset.traces()[dataset.TracesOfUser(*a)[0]].size(), 2u);
}

TEST(ReadCsv, SkipsBlankLines) {
  std::istringstream in("a,45.0,4.0,1\n\n \nb,45.0,4.0,2\n");
  EXPECT_EQ(ReadCsv(in).EventCount(), 2u);
}

TEST(ReadCsv, RejectsWrongFieldCount) {
  std::istringstream in("a,45.0,4.0\n");
  EXPECT_THROW(ReadCsv(in), IoError);
}

TEST(ReadCsv, RejectsBadCoordinates) {
  // A non-numeric lat on the FIRST row reads as a header (by design), so
  // the malformed row must not be first.
  std::istringstream in(
      "a,45.0,4.0,1\n"
      "a,forty-five,4.0,2\n");
  EXPECT_THROW(ReadCsv(in), IoError);
}

TEST(ReadCsv, RejectsOutOfRangeCoordinates) {
  std::istringstream in("a,95.0,4.0,1\n");
  EXPECT_THROW(ReadCsv(in), IoError);
}

TEST(ReadCsv, RejectsBadTimestamp) {
  std::istringstream in("a,45.0,4.0,yesterday\n");
  EXPECT_THROW(ReadCsv(in), IoError);
}

TEST(ReadCsv, ErrorMessageCarriesRow) {
  std::istringstream in(
      "a,45.0,4.0,1\n"
      "a,45.0,4.0,bad\n");
  try {
    (void)ReadCsv(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos);
  }
}

TEST(WriteCsv, RoundTrip) {
  Dataset dataset;
  dataset.AddTraceForUser(
      "alice", {{{45.764043, 4.835659}, 100}, {{45.765, 4.836}, 200}});
  dataset.AddTraceForUser("bob", {{{45.7, 4.8}, 150}});
  std::ostringstream out;
  WriteCsv(dataset, out);
  std::istringstream in(out.str());
  const Dataset back = ReadCsv(in);
  EXPECT_EQ(back.UserCount(), 2u);
  EXPECT_EQ(back.EventCount(), 3u);
  const auto alice = back.FindUser("alice");
  ASSERT_TRUE(alice.has_value());
  const auto& trace = back.traces()[back.TracesOfUser(*alice)[0]];
  EXPECT_EQ(trace.front().time, 100);
  EXPECT_NEAR(trace.front().position.lat, 45.764043, 1e-6);
}

TEST(ReadCsv, QuotedFieldsTakeTheStreamingPath) {
  // Quoted user names (here with an embedded comma and newline) route the
  // buffer through the streaming RFC-4180 reader — over the same bytes,
  // with the same result as reading the stream directly.
  const std::string text =
      "user,lat,lng,timestamp\n"
      "\"smith, alice\",45.0,4.0,100\n"
      "\"multi\nline\",45.1,4.1,200\n";
  const Dataset dataset = ReadCsvText(text);
  EXPECT_EQ(dataset.UserCount(), 2u);
  EXPECT_EQ(dataset.EventCount(), 2u);
  EXPECT_TRUE(dataset.FindUser("smith, alice").has_value());
  EXPECT_TRUE(dataset.FindUser("multi\nline").has_value());
}

TEST(ReadCsvFile, MissingFileThrows) {
  EXPECT_THROW(ReadCsvFile("/nonexistent/path.csv"), IoError);
}

TEST(AppendPlt, ParsesGeolifeFormat) {
  // 6 header lines then lat,lng,0,alt,days,date,time rows.
  std::istringstream in(
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n0\n"
      "39.906631,116.385564,0,492,39925.44,2009-04-22,10:34:31\n"
      "39.906554,116.385625,0,492,39925.44,2009-04-22,10:34:33\n");
  Dataset dataset;
  AppendPlt(dataset, "geolife_user", in);
  EXPECT_EQ(dataset.UserCount(), 1u);
  ASSERT_EQ(dataset.EventCount(), 2u);
  const auto& trace = dataset.traces().front();
  EXPECT_NEAR(trace.front().position.lat, 39.906631, 1e-6);
  EXPECT_EQ(trace.back().time - trace.front().time, 2);
}

TEST(AppendPlt, RejectsMalformedRows) {
  std::istringstream in(
      "h\nh\nh\nh\nh\nh\n"
      "39.9,116.3,0,492\n");  // too few fields
  Dataset dataset;
  EXPECT_THROW(AppendPlt(dataset, "u", in), IoError);
}

}  // namespace
}  // namespace mobipriv::model
