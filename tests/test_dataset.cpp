#include "model/dataset.h"

#include <gtest/gtest.h>

namespace mobipriv::model {
namespace {

TEST(Dataset, InternUserIsIdempotent) {
  Dataset dataset;
  const UserId a = dataset.InternUser("alice");
  const UserId b = dataset.InternUser("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(dataset.InternUser("alice"), a);
  EXPECT_EQ(dataset.UserCount(), 2u);
  EXPECT_EQ(dataset.UserName(a), "alice");
  EXPECT_EQ(dataset.UserName(b), "bob");
}

TEST(Dataset, FindUser) {
  Dataset dataset;
  const UserId a = dataset.InternUser("alice");
  EXPECT_EQ(dataset.FindUser("alice"), a);
  EXPECT_FALSE(dataset.FindUser("carol").has_value());
}

TEST(Dataset, UnknownUserNameFallback) {
  const Dataset dataset;
  EXPECT_EQ(dataset.UserName(7), "user7");
}

TEST(Dataset, AddTraceForUser) {
  Dataset dataset;
  const UserId id = dataset.AddTraceForUser(
      "alice", {{{45.0, 4.0}, 100}, {{45.1, 4.0}, 200}});
  EXPECT_EQ(dataset.TraceCount(), 1u);
  EXPECT_EQ(dataset.EventCount(), 2u);
  EXPECT_EQ(dataset.traces().front().user(), id);
}

TEST(Dataset, MultipleTracesPerUser) {
  Dataset dataset;
  dataset.AddTraceForUser("alice", {{{45.0, 4.0}, 100}});
  dataset.AddTraceForUser("alice", {{{45.0, 4.0}, 500}});
  dataset.AddTraceForUser("bob", {{{45.0, 4.0}, 300}});
  EXPECT_EQ(dataset.UserCount(), 2u);
  EXPECT_EQ(dataset.TraceCount(), 3u);
  const auto alice = dataset.FindUser("alice");
  ASSERT_TRUE(alice.has_value());
  EXPECT_EQ(dataset.TracesOfUser(*alice),
            (std::vector<std::size_t>{0, 1}));
}

TEST(Dataset, TracesOfUserIndexTracksInterleavedAdds) {
  Dataset dataset;
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 1}});
  dataset.AddTraceForUser("b", {{{45.0, 4.0}, 2}});
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 3}});
  dataset.AddTraceForUser("c", {{{45.0, 4.0}, 4}});
  dataset.AddTraceForUser("b", {{{45.0, 4.0}, 5}});
  const auto a = dataset.FindUser("a");
  const auto b = dataset.FindUser("b");
  const auto c = dataset.FindUser("c");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(dataset.TracesOfUser(*a), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(dataset.TracesOfUser(*b), (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(dataset.TracesOfUser(*c), (std::vector<std::size_t>{3}));
}

TEST(Dataset, TracesOfUserUnknownUserIsEmpty) {
  Dataset dataset;
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 1}});
  EXPECT_TRUE(dataset.TracesOfUser(42).empty());
  EXPECT_TRUE(dataset.TracesOfUser(kInvalidUser).empty());
}

TEST(Dataset, RebuildUserIndexAfterOutOfBandMutation) {
  Dataset dataset;
  const UserId a = dataset.InternUser("a");
  const UserId b = dataset.InternUser("b");
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 1}});
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 2}});
  // Reassign the second trace through the mutable accessor, then rebuild.
  dataset.mutable_traces()[1].set_user(b);
  dataset.RebuildUserIndex();
  EXPECT_EQ(dataset.TracesOfUser(a), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dataset.TracesOfUser(b), (std::vector<std::size_t>{1}));
}

TEST(Dataset, EmptyDataset) {
  const Dataset dataset;
  EXPECT_TRUE(dataset.empty());
  EXPECT_EQ(dataset.EventCount(), 0u);
  EXPECT_TRUE(dataset.BoundingBox().IsEmpty());
}

TEST(Dataset, BoundingBoxSpansAllTraces) {
  Dataset dataset;
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 1}});
  dataset.AddTraceForUser("b", {{{46.0, 5.0}, 2}});
  const auto box = dataset.BoundingBox();
  EXPECT_NEAR(box.SouthWest().lat, 45.0, 1e-12);
  EXPECT_NEAR(box.NorthEast().lng, 5.0, 1e-12);
}

TEST(Dataset, SortAll) {
  Dataset dataset;
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 200}, {{45.1, 4.0}, 100}});
  dataset.SortAll();
  EXPECT_TRUE(dataset.traces().front().IsTimeOrdered());
}

TEST(Dataset, CloneIsDeep) {
  Dataset dataset;
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 1}});
  Dataset copy = dataset.Clone();
  copy.AddTraceForUser("b", {{{46.0, 4.0}, 2}});
  EXPECT_EQ(dataset.TraceCount(), 1u);
  EXPECT_EQ(copy.TraceCount(), 2u);
  EXPECT_EQ(dataset.UserCount(), 1u);
}

}  // namespace
}  // namespace mobipriv::model
