#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mobipriv::util {
namespace {

TEST(CsvReader, SimpleRows) {
  std::istringstream in("a,b,c\n1,2,3\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"a", "b", "c"}));
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"1", "2", "3"}));
  EXPECT_FALSE(reader.ReadRow(row));
  EXPECT_EQ(reader.RowsRead(), 2u);
}

TEST(CsvReader, MissingTrailingNewline) {
  std::istringstream in("x,y");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"x", "y"}));
  EXPECT_FALSE(reader.ReadRow(row));
}

TEST(CsvReader, EmptyFieldsPreserved) {
  std::istringstream in("a,,c\n,,\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"a", "", "c"}));
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"", "", ""}));
}

TEST(CsvReader, QuotedFieldWithDelimiter) {
  std::istringstream in("\"a,b\",c\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"a,b", "c"}));
}

TEST(CsvReader, EscapedQuotes) {
  std::istringstream in("\"he said \"\"hi\"\"\",x\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"he said \"hi\"", "x"}));
}

TEST(CsvReader, QuotedNewline) {
  std::istringstream in("\"line1\nline2\",b\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"line1\nline2", "b"}));
}

TEST(CsvReader, CrLfLineEndings) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"a", "b"}));
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"c", "d"}));
}

TEST(CsvReader, CustomDelimiter) {
  std::istringstream in("a;b;c\n");
  CsvReader reader(in, ';');
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLine, Basic) {
  EXPECT_EQ(ParseCsvLine("a,b"), (CsvRow{"a", "b"}));
  EXPECT_EQ(ParseCsvLine(""), (CsvRow{""}));
  EXPECT_EQ(ParseCsvLine("\"x,y\",z"), (CsvRow{"x,y", "z"}));
}

TEST(CsvWriter, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow(CsvRow{"plain", "with,comma", "with\"quote", "multi\nline"});
  std::istringstream in(out.str());
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row,
            (CsvRow{"plain", "with,comma", "with\"quote", "multi\nline"}));
}

TEST(CsvWriter, InitializerListOverload) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b"});
  EXPECT_EQ(out.str(), "a,b\n");
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"simple", "a,b"});
  EXPECT_EQ(out.str(), "simple,\"a,b\"\n");
}

}  // namespace
}  // namespace mobipriv::util
