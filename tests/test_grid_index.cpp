#include "geo/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace mobipriv::geo {
namespace {

TEST(GridIndex, EmptyQueries) {
  const GridIndex index(100.0);
  EXPECT_EQ(index.Size(), 0u);
  EXPECT_TRUE(index.QueryRadius({0.0, 0.0}, 50.0).empty());
  EXPECT_TRUE(index.QueryBoxCandidates({0.0, 0.0}, 50.0).empty());
}

TEST(GridIndex, FindsPointsWithinRadius) {
  GridIndex index(100.0);
  index.Insert({0.0, 0.0}, 1);
  index.Insert({30.0, 40.0}, 2);   // 50 m away
  index.Insert({300.0, 0.0}, 3);   // 300 m away
  auto hits = index.QueryRadius({0.0, 0.0}, 60.0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{1, 2}));
}

TEST(GridIndex, RadiusBoundaryInclusive) {
  GridIndex index(100.0);
  index.Insert({50.0, 0.0}, 7);
  EXPECT_EQ(index.QueryRadius({0.0, 0.0}, 50.0).size(), 1u);
  EXPECT_TRUE(index.QueryRadius({0.0, 0.0}, 49.999).empty());
}

TEST(GridIndex, RadiusLargerThanCellSize) {
  GridIndex index(50.0);  // radius > cell: must scan a wider neighbourhood
  index.Insert({120.0, 0.0}, 1);
  index.Insert({0.0, 130.0}, 2);
  const auto hits = index.QueryRadius({0.0, 0.0}, 150.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(GridIndex, NegativeCoordinates) {
  GridIndex index(100.0);
  index.Insert({-250.0, -250.0}, 9);
  EXPECT_EQ(index.QueryRadius({-240.0, -240.0}, 30.0).size(), 1u);
}

TEST(GridIndex, MatchesBruteForce) {
  util::Rng rng(77);
  GridIndex index(120.0);
  std::vector<Point2> points;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Point2 p{rng.Uniform(-1000.0, 1000.0), rng.Uniform(-1000.0, 1000.0)};
    points.push_back(p);
    index.Insert(p, i);
  }
  for (int q = 0; q < 20; ++q) {
    const Point2 center{rng.Uniform(-1000.0, 1000.0),
                        rng.Uniform(-1000.0, 1000.0)};
    const double radius = rng.Uniform(10.0, 400.0);
    auto hits = index.QueryRadius(center, radius);
    std::sort(hits.begin(), hits.end());
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < points.size(); ++i) {
      if (Distance(points[i], center) <= radius) expected.push_back(i);
    }
    EXPECT_EQ(hits, expected) << "query " << q;
  }
}

TEST(GridIndex, BoxCandidatesIsSuperset) {
  util::Rng rng(78);
  GridIndex index(100.0);
  for (std::uint64_t i = 0; i < 200; ++i) {
    index.Insert({rng.Uniform(-500.0, 500.0), rng.Uniform(-500.0, 500.0)}, i);
  }
  const Point2 center{0.0, 0.0};
  const double radius = 150.0;
  auto exact = index.QueryRadius(center, radius);
  auto candidates = index.QueryBoxCandidates(center, radius);
  std::vector<std::uint64_t> candidate_ids;
  for (const auto& [id, p] : candidates) candidate_ids.push_back(id);
  std::sort(exact.begin(), exact.end());
  std::sort(candidate_ids.begin(), candidate_ids.end());
  EXPECT_TRUE(std::includes(candidate_ids.begin(), candidate_ids.end(),
                            exact.begin(), exact.end()));
}

TEST(GridIndex, ClearResets) {
  GridIndex index(100.0);
  index.Insert({0.0, 0.0}, 1);
  EXPECT_EQ(index.Size(), 1u);
  index.Clear();
  EXPECT_EQ(index.Size(), 0u);
  EXPECT_TRUE(index.QueryRadius({0.0, 0.0}, 10.0).empty());
}

TEST(GridIndex, DuplicatePositionsAllowed) {
  GridIndex index(100.0);
  index.Insert({5.0, 5.0}, 1);
  index.Insert({5.0, 5.0}, 2);
  EXPECT_EQ(index.QueryRadius({5.0, 5.0}, 1.0).size(), 2u);
}

}  // namespace
}  // namespace mobipriv::geo
