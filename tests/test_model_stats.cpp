#include "model/stats.h"

#include <gtest/gtest.h>

namespace mobipriv::model {
namespace {

Trace ConstantSpeedTrace() {
  // Equal hops (~1112 m) and equal intervals (100 s).
  return Trace(1, {{{45.00, 4.0}, 0},
                   {{45.01, 4.0}, 100},
                   {{45.02, 4.0}, 200},
                   {{45.03, 4.0}, 300}});
}

Trace StopAndGoTrace() {
  // Stationary for 2000 s (two segments), then a fast hop: speeds
  // {0, 0, v} have CV = sqrt(2) > 1.
  return Trace(1, {{{45.00, 4.0}, 0},
                   {{45.00, 4.0}, 1000},
                   {{45.00, 4.0}, 2000},
                   {{45.05, 4.0}, 2100}});
}

TEST(InterEventDistances, Values) {
  const auto d = InterEventDistances(ConstantSpeedTrace());
  ASSERT_EQ(d.size(), 3u);
  for (const double x : d) EXPECT_NEAR(x, 1112.0, 2.0);
  EXPECT_TRUE(InterEventDistances(Trace{}).empty());
}

TEST(InterEventIntervals, Values) {
  const auto dt = InterEventIntervals(ConstantSpeedTrace());
  ASSERT_EQ(dt.size(), 3u);
  for (const double x : dt) EXPECT_DOUBLE_EQ(x, 100.0);
}

TEST(SpeedProfile, ConstantTrace) {
  const auto speeds = SpeedProfile(ConstantSpeedTrace());
  ASSERT_EQ(speeds.size(), 3u);
  for (const double s : speeds) EXPECT_NEAR(s, 11.12, 0.02);
}

TEST(SpeedProfile, ZeroIntervalYieldsZeroSpeed) {
  Trace trace(1, {{{45.0, 4.0}, 10}, {{45.1, 4.0}, 10}});
  const auto speeds = SpeedProfile(trace);
  ASSERT_EQ(speeds.size(), 1u);
  EXPECT_DOUBLE_EQ(speeds[0], 0.0);
}

TEST(SpeedCoefficientOfVariation, DiscriminatesStops) {
  // The paper's stage-1 invariant: constant-speed traces have CV ~ 0,
  // stop-and-go traces have large CV.
  EXPECT_NEAR(SpeedCoefficientOfVariation(ConstantSpeedTrace()), 0.0, 1e-3);
  EXPECT_GT(SpeedCoefficientOfVariation(StopAndGoTrace()), 1.0);
}

TEST(SpeedCoefficientOfVariation, DegenerateTraces) {
  EXPECT_DOUBLE_EQ(SpeedCoefficientOfVariation(Trace{}), 0.0);
  Trace two(1, {{{45.0, 4.0}, 0}, {{45.1, 4.0}, 10}});
  EXPECT_DOUBLE_EQ(SpeedCoefficientOfVariation(two), 0.0);  // single segment
}

TEST(ComputeDatasetStats, Aggregates) {
  Dataset dataset;
  dataset.AddTraceForUser("a", ConstantSpeedTrace().events());
  dataset.AddTraceForUser("b", StopAndGoTrace().events());
  const DatasetStats stats = ComputeDatasetStats(dataset);
  EXPECT_EQ(stats.users, 2u);
  EXPECT_EQ(stats.traces, 2u);
  EXPECT_EQ(stats.events, 8u);
  EXPECT_EQ(stats.trace_events.count, 2u);
  EXPECT_DOUBLE_EQ(stats.trace_duration_s.max, 2100.0);
  EXPECT_EQ(stats.speed_mps.count, 6u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ComputeDatasetStats, EmptyDataset) {
  const DatasetStats stats = ComputeDatasetStats(Dataset{});
  EXPECT_EQ(stats.users, 0u);
  EXPECT_EQ(stats.events, 0u);
}

}  // namespace
}  // namespace mobipriv::model
