// Parameterized property sweeps over the geometric kernels: chord
// resampling (the stage-1 primitive), arc resampling, projections.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/polyline.h"
#include "geo/projection.h"
#include "util/rng.h"

namespace mobipriv::geo {
namespace {

/// Random jagged path of `n` vertices with hops up to `max_hop` metres.
std::vector<Point2> RandomPath(std::uint64_t seed, std::size_t n,
                               double max_hop) {
  util::Rng rng(seed);
  std::vector<Point2> path{{0.0, 0.0}};
  for (std::size_t i = 1; i < n; ++i) {
    const double angle = rng.Angle();
    const double hop = rng.Uniform(0.0, max_hop);
    path.push_back(path.back() +
                   Point2{hop * std::cos(angle), hop * std::sin(angle)});
  }
  return path;
}

// ---------------------------------------------------------------- chord --

class ChordResampleProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ChordResampleProperty, AllInteriorHopsEqualSpacing) {
  const auto [spacing, seed] = GetParam();
  const auto path = RandomPath(seed, 60, spacing * 2.5);
  const auto out = ChordResample(path, spacing);
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_NEAR(Distance(out[i - 1], out[i]), spacing, spacing * 1e-9)
        << "spacing=" << spacing << " seed=" << seed << " hop=" << i;
  }
  if (out.size() >= 2) {
    EXPECT_LE(Distance(out[out.size() - 2], out.back()),
              spacing * (1.0 + 1e-9));
  }
}

TEST_P(ChordResampleProperty, OutputStaysNearInputPath) {
  const auto [spacing, seed] = GetParam();
  const auto path = RandomPath(seed, 60, spacing * 2.5);
  const auto out = ChordResample(path, spacing);
  for (const auto& p : out) {
    // Chord points sit on segments of the input polyline (corner cutting
    // happens between output points, not at them).
    EXPECT_LT(DistanceToPolyline(path, p), 1e-6);
  }
}

TEST_P(ChordResampleProperty, EndpointsAnchored) {
  const auto [spacing, seed] = GetParam();
  const auto path = RandomPath(seed, 60, spacing * 2.5);
  const auto out = ChordResample(path, spacing);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), path.front());
  EXPECT_EQ(out.back(), path.back());
}

TEST_P(ChordResampleProperty, PointCountBoundedByPathLength) {
  const auto [spacing, seed] = GetParam();
  const auto path = RandomPath(seed, 60, spacing * 2.5);
  const auto out = ChordResample(path, spacing);
  // Each interior hop consumes at least `spacing` of arc length.
  const double arc = PolylineLength(path);
  EXPECT_LE(out.size(), static_cast<std::size_t>(arc / spacing) + 2);
}

INSTANTIATE_TEST_SUITE_P(
    SpacingsAndSeeds, ChordResampleProperty,
    ::testing::Combine(::testing::Values(10.0, 50.0, 100.0, 333.0),
                       ::testing::Values(1ULL, 2ULL, 3ULL)));

// ------------------------------------------------------------------ arc --

class ArcResampleProperty : public ::testing::TestWithParam<double> {};

TEST_P(ArcResampleProperty, UniformArcSpacingOnRandomPaths) {
  const double spacing = GetParam();
  const auto path = RandomPath(99, 40, spacing * 3.0);
  const auto out = ResampleUniform(path, spacing);
  ASSERT_GE(out.size(), 2u);
  // Verify every output point lies on the path and arc gaps are equal by
  // re-measuring arc positions via projection onto the cumulative profile.
  for (const auto& p : out) {
    EXPECT_LT(DistanceToPolyline(path, p), 1e-6);
  }
  const double arc = PolylineLength(path);
  const auto intervals = out.size() - 1;
  EXPECT_LE(arc / static_cast<double>(intervals), spacing * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Spacings, ArcResampleProperty,
                         ::testing::Values(10.0, 50.0, 200.0, 1000.0));

// ----------------------------------------------------------- projection --

class ProjectionProperty : public ::testing::TestWithParam<LatLng> {};

TEST_P(ProjectionProperty, RoundTripAtManyOrigins) {
  const LocalProjection projection(GetParam());
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    // Points within ~20 km of the origin (city scale).
    const Point2 planar{rng.Uniform(-20000.0, 20000.0),
                        rng.Uniform(-20000.0, 20000.0)};
    const LatLng geo = projection.Unproject(planar);
    const Point2 back = projection.Project(geo);
    EXPECT_NEAR(back.x, planar.x, 1e-6);
    EXPECT_NEAR(back.y, planar.y, 1e-6);
  }
}

TEST_P(ProjectionProperty, LocalDistancesMatchHaversine) {
  const LocalProjection projection(GetParam());
  util::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const Point2 a{rng.Uniform(-5000.0, 5000.0),
                   rng.Uniform(-5000.0, 5000.0)};
    const Point2 b{rng.Uniform(-5000.0, 5000.0),
                   rng.Uniform(-5000.0, 5000.0)};
    const double planar = Distance(a, b);
    const double geodesic =
        HaversineDistance(projection.Unproject(a), projection.Unproject(b));
    EXPECT_NEAR(planar, geodesic, std::max(0.02, geodesic * 2e-3));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Origins, ProjectionProperty,
    ::testing::Values(LatLng{45.7640, 4.8357},   // Lyon (the authors')
                      LatLng{0.0, 0.0},          // equator
                      LatLng{59.9139, 10.7522},  // Oslo (high latitude)
                      LatLng{-33.8688, 151.2093},  // Sydney (south/east)
                      LatLng{37.7749, -122.4194}));  // SF (west)

}  // namespace
}  // namespace mobipriv::geo
