#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/evaluator.h"
#include "core/scenario.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"
#include "util/spec.h"
#include "util/thread_pool.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

/// Small shared world (built once; tests treat it as read-only).
const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 20;
    config.days = 1;
    config.seed = 77;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

core::ScenarioSpec BaseSpec() {
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  spec.mechanisms = {"identity", "cloaking", "geo_ind[eps=0.01]"};
  spec.evaluators = {"coverage", "spatial_distortion"};
  spec.seeds = {11};
  return spec;
}

TEST(ScenarioEngine, GridCoversEveryCell) {
  core::ScenarioEngine engine(BaseSpec());
  const core::Report report = engine.Run();

  // 3 mechanisms x 2 evaluators, every pair present, in canonical order.
  std::size_t coverage_rows = 0;
  for (const core::ReportRow& row : report.rows()) {
    EXPECT_EQ(row.seed, 11u);
    if (row.metric == "coverage_jaccard") ++coverage_rows;
  }
  EXPECT_EQ(coverage_rows, 3u);
  EXPECT_EQ(engine.stats().mechanism_nodes, 3u);
  EXPECT_EQ(engine.stats().evaluator_nodes, 6u);
  EXPECT_EQ(report.rows().front().mechanism, "identity");

  // Identity sanity: published == original.
  for (const core::ReportRow& row : report.rows()) {
    if (row.mechanism != "identity") continue;
    if (row.metric == "coverage_jaccard") EXPECT_DOUBLE_EQ(row.value, 1.0);
    if (row.metric == "path_mean_m") EXPECT_DOUBLE_EQ(row.value, 0.0);
  }
}

TEST(ScenarioEngine, MemoizesDuplicateMechanismSpecs) {
  core::ScenarioSpec spec = BaseSpec();
  // "cloaking" canonicalizes to "cloaking[cell=250m]": one shared node.
  spec.mechanisms = {"cloaking", "cloaking[cell=250m]", "identity"};
  core::ScenarioEngine engine(spec);
  const core::Report report = engine.Run();
  EXPECT_EQ(engine.stats().mechanism_nodes, 2u);
  EXPECT_EQ(engine.stats().grid_cells, 6u);
  std::size_t cloaking_rows = 0;
  for (const core::ReportRow& row : report.rows()) {
    if (row.mechanism == "cloaking[cell=250m]" &&
        row.metric == "coverage_jaccard") {
      ++cloaking_rows;
    }
  }
  EXPECT_EQ(cloaking_rows, 1u);  // deduped, not duplicated
}

TEST(ScenarioEngine, ReportByteIdenticalAcrossThreadCounts) {
  core::ScenarioSpec spec = BaseSpec();
  spec.evaluators = {"coverage", "spatial_distortion", "range_queries[n=40]",
                     "poi_attack"};
  spec.seeds = {3, 9};

  spec.threads = 1;
  const std::string serial = core::RunScenario(spec).ToCsv();
  spec.threads = 4;
  const std::string parallel = core::RunScenario(spec).ToCsv();
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("range_err_median"), std::string::npos);
}

TEST(ScenarioEngine, ReportByteIdenticalAcrossSourceShardings) {
  const fs::path dir = fs::temp_directory_path() / "mobipriv_engine_src";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // The same dataset served four ways: borrowed, one .mpc, 1-shard dir,
  // 8-shard dir.
  const std::string mpc = (dir / "world.mpc").string();
  model::WriteColumnar(model::EventStore::FromDataset(World()), mpc);
  model::ShardedDataset::Partition(World(), 1)
      .SaveShards((dir / "s1").string());
  model::ShardedDataset::Partition(World(), 8)
      .SaveShards((dir / "s8").string());

  core::ScenarioSpec spec = BaseSpec();
  spec.evaluators = {"coverage", "trajectory_stats"};

  const std::string borrowed = core::RunScenario(spec).ToCsv();
  spec.source = core::DatasetSourceSpec::ColumnarFile(mpc);
  const std::string columnar = core::RunScenario(spec).ToCsv();
  spec.source = core::DatasetSourceSpec::ShardDir((dir / "s1").string());
  const std::string one_shard = core::RunScenario(spec).ToCsv();
  spec.source = core::DatasetSourceSpec::ShardDir((dir / "s8").string());
  const std::string eight_shards = core::RunScenario(spec).ToCsv();

  EXPECT_EQ(borrowed, columnar);
  EXPECT_EQ(borrowed, one_shard);
  EXPECT_EQ(borrowed, eight_shards);

  // FromPath dispatches: directory-with-manifest vs .mpc file.
  EXPECT_EQ(core::DatasetSourceSpec::FromPath((dir / "s8").string()).kind,
            core::DatasetSourceSpec::Kind::kShardDir);
  EXPECT_EQ(core::DatasetSourceSpec::FromPath(mpc).kind,
            core::DatasetSourceSpec::Kind::kColumnarFile);
  fs::remove_all(dir);
}

TEST(ScenarioEngine, MpcSourceFeedsGridWithoutFullMaterialize) {
  const fs::path dir = fs::temp_directory_path() / "mobipriv_engine_mpc";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string mpc = (dir / "world.mpc").string();
  model::WriteColumnar(model::EventStore::FromDataset(World()), mpc);

  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::ColumnarFile(mpc);
  // Per-trace mechanisms stream the mmap'd view trace by trace; mixzone
  // is whole-dataset but SoA-native end to end — detection reads the
  // view's columns and reassembly writes store columns directly. (The
  // remaining whole-dataset mechanisms, ours/wait4me, materialize their
  // working set by design — that is their documented adapter.)
  spec.mechanisms = {"speed_smoothing", "geo_ind[eps=0.01]",
                     "geo_ind[eps=0.1]", "cloaking", "gaussian",
                     "downsampling", "mixzone"};
  spec.evaluators = {"spatial_distortion", "coverage", "trajectory_stats",
                     "poi_attack"};
  spec.seeds = {5};

  const std::size_t before = model::FullMaterializeCount();
  const std::size_t copies_before = model::TraceCopyCount();
  core::ScenarioEngine engine(spec);
  const core::Report report = engine.Run();
  EXPECT_EQ(model::FullMaterializeCount(), before)
      << "engine or a per-trace mechanism/evaluator materialized the "
         "full source";
  // The SoA-native contract: mechanism nodes fill EventStore columns
  // straight from the mmap'd view — not one owning per-trace copy
  // (TraceView::Materialize) anywhere between source and report.
  EXPECT_EQ(model::TraceCopyCount(), copies_before)
      << "a mechanism or evaluator built an owning Trace from a view on "
         "the store path";
  EXPECT_EQ(engine.stats().mechanism_nodes, 7u);
  EXPECT_EQ(engine.stats().evaluator_nodes, 28u);
  EXPECT_FALSE(report.rows().empty());
  fs::remove_all(dir);
}

TEST(ScenarioEngine, PivotTableShapesRows) {
  const core::Report report = core::RunScenario(BaseSpec());
  const core::Table pivot = report.Pivot("coverage[cell=200m]");
  const std::string csv = pivot.ToCsv();
  EXPECT_NE(csv.find("mechanism,seed,coverage_jaccard"), std::string::npos);
  EXPECT_NE(csv.find("identity,11,1.000000"), std::string::npos);
}

TEST(ScenarioEngine, InvalidSpecsFailAtCompileTime) {
  core::ScenarioSpec spec = BaseSpec();
  spec.mechanisms = {"warp_drive"};
  EXPECT_THROW(core::ScenarioEngine{spec}, util::SpecError);

  spec = BaseSpec();
  spec.evaluators = {"coverage[radius=1]"};  // unknown parameter
  EXPECT_THROW(core::ScenarioEngine{spec}, util::SpecError);

  spec = BaseSpec();
  spec.mechanisms.clear();
  EXPECT_THROW(core::ScenarioEngine{spec}, util::SpecError);
}

TEST(ScenarioEngine, EvaluatorNamesRoundTrip) {
  for (const std::string& base : core::RegisteredEvaluatorBases()) {
    const auto evaluator = core::CreateEvaluator(base);
    const auto rebuilt = core::CreateEvaluator(evaluator->Name());
    EXPECT_EQ(rebuilt->Name(), evaluator->Name()) << base;
  }
}

TEST(ScenarioEngine, EvaluatorNamesAreInjectiveOnConfig) {
  // The engine dedupes evaluators by Name(); differently-configured
  // evaluators must therefore never share one.
  for (const char* tuned :
       {"poi_attack[dwell=600]", "poi_attack[diameter=750m]",
        "kdelta[grid=30]", "kdelta[tolerance=0.1]"}) {
    const auto base = std::string(tuned).substr(0, std::string(tuned).find('['));
    EXPECT_NE(core::CreateEvaluator(tuned)->Name(),
              core::CreateEvaluator(base)->Name())
        << tuned;
    // ... and the tuned name still round-trips.
    const auto evaluator = core::CreateEvaluator(tuned);
    EXPECT_EQ(core::CreateEvaluator(evaluator->Name())->Name(),
              evaluator->Name());
  }
}

TEST(ScenarioEngine, InstantiatesFromOriginalSpecTextNotLossyName) {
  // "geo_ind[eps=0.00004]" canonicalizes to the name "geo_ind[eps=0.0000]"
  // (fixed print precision). Re-parsing the NAME would run epsilon = 0 —
  // infinite planar-Laplace noise, non-finite coordinates — so finite
  // report values prove the engine ran the original spec text.
  core::ScenarioSpec spec = BaseSpec();
  spec.mechanisms = {"geo_ind[eps=0.00004]"};
  spec.evaluators = {"spatial_distortion"};
  const core::Report report = core::RunScenario(std::move(spec));
  ASSERT_FALSE(report.rows().empty());
  for (const core::ReportRow& row : report.rows()) {
    EXPECT_TRUE(std::isfinite(row.value)) << row.metric;
  }
}

TEST(ScenarioEngine, RunTwiceThrows) {
  core::ScenarioEngine engine(BaseSpec());
  (void)engine.Run();
  EXPECT_THROW((void)engine.Run(), std::logic_error);
}

}  // namespace
}  // namespace mobipriv
