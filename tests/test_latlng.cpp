#include "geo/latlng.h"

#include <gtest/gtest.h>

#include <numbers>

namespace mobipriv::geo {
namespace {

TEST(LatLng, Validity) {
  EXPECT_TRUE((LatLng{0.0, 0.0}).IsValid());
  EXPECT_TRUE((LatLng{90.0, 180.0}).IsValid());
  EXPECT_TRUE((LatLng{-90.0, -180.0}).IsValid());
  EXPECT_FALSE((LatLng{91.0, 0.0}).IsValid());
  EXPECT_FALSE((LatLng{0.0, 181.0}).IsValid());
  EXPECT_FALSE((LatLng{-90.5, 0.0}).IsValid());
}

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLng p{45.764, 4.8357};
  EXPECT_DOUBLE_EQ(HaversineDistance(p, p), 0.0);
}

TEST(Haversine, KnownDistances) {
  // One degree of latitude ~ 111.2 km (mean-radius sphere).
  const double d_lat =
      HaversineDistance({0.0, 0.0}, {1.0, 0.0});
  EXPECT_NEAR(d_lat, 111195.0, 50.0);
  // Paris -> Lyon ~ 392 km great-circle.
  const double paris_lyon =
      HaversineDistance({48.8566, 2.3522}, {45.7640, 4.8357});
  EXPECT_NEAR(paris_lyon, 392000.0, 2000.0);
}

TEST(Haversine, Symmetric) {
  const LatLng a{45.76, 4.83};
  const LatLng b{45.77, 4.85};
  EXPECT_DOUBLE_EQ(HaversineDistance(a, b), HaversineDistance(b, a));
}

TEST(Haversine, AntipodalPointsAreHalfCircumference) {
  const double d = HaversineDistance({0.0, 0.0}, {0.0, 180.0});
  EXPECT_NEAR(d, std::numbers::pi * kEarthRadiusMeters, 1.0);
}

TEST(Equirectangular, MatchesHaversineAtCityScale) {
  const LatLng a{45.7640, 4.8357};
  const LatLng b{45.7841, 4.8600};  // a few km away
  const double exact = HaversineDistance(a, b);
  const double fast = EquirectangularDistance(a, b);
  EXPECT_NEAR(fast, exact, exact * 0.005);
}

TEST(InitialBearing, CardinalDirections) {
  const LatLng origin{45.0, 4.0};
  EXPECT_NEAR(InitialBearing(origin, {46.0, 4.0}), 0.0, 1e-6);  // north
  EXPECT_NEAR(InitialBearing(origin, {44.0, 4.0}), std::numbers::pi,
              1e-6);  // south
  EXPECT_NEAR(InitialBearing(origin, {45.0, 5.0}), std::numbers::pi / 2.0,
              0.02);  // east (slight great-circle deviation)
}

TEST(Destination, InvertsDistanceAndBearing) {
  const LatLng origin{45.7640, 4.8357};
  for (const double bearing : {0.0, 0.7, 1.9, 3.5, 5.8}) {
    const LatLng dest = Destination(origin, bearing, 5000.0);
    EXPECT_NEAR(HaversineDistance(origin, dest), 5000.0, 1.0);
    EXPECT_NEAR(InitialBearing(origin, dest), bearing, 0.01);
  }
}

TEST(Destination, ZeroDistanceIsOrigin) {
  const LatLng origin{12.34, 56.78};
  const LatLng dest = Destination(origin, 1.0, 0.0);
  EXPECT_NEAR(dest.lat, origin.lat, 1e-12);
  EXPECT_NEAR(dest.lng, origin.lng, 1e-12);
}

TEST(LatLngToString, SixDecimals) {
  EXPECT_EQ((LatLng{45.764043, 4.835659}).ToString(), "45.764043,4.835659");
}

}  // namespace
}  // namespace mobipriv::geo
