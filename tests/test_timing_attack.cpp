#include "attacks/timing_attack.h"

#include <gtest/gtest.h>

#include "mechanisms/mixzone.h"

namespace mobipriv::attacks {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// Crossing pair through the origin (see mix-zone tests): A west->east,
/// B south->north, both at 2 m/s crossing at t = 500.
model::Dataset CrossingPair() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  const auto a = dataset.InternUser("A");
  const auto b = dataset.InternUser("B");
  model::Trace ta;
  ta.set_user(a);
  model::Trace tb;
  tb.set_user(b);
  for (int i = 0; i <= 100; ++i) {
    const double s = -1000.0 + 20.0 * i;
    const auto t = static_cast<util::Timestamp>(i * 10);
    ta.Append({projection.Unproject({s, 0.0}), t});
    tb.Append({projection.Unproject({0.0, s}), t});
  }
  dataset.AddTrace(std::move(ta));
  dataset.AddTrace(std::move(tb));
  return dataset;
}

TEST(TimingAttack, ObservesCrossingsWithGroundTruth) {
  const model::Dataset original = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  const mech::MixZone mixzone;  // radius 150 m, suppression on
  util::Rng rng(1);
  mech::MixZoneReport report;
  const model::Dataset published =
      mixzone.ApplyWithReport(original, rng, report);
  ASSERT_GE(report.occurrences, 1u);
  const TimingAttack attack;
  const auto crossings = attack.ObserveCrossings(
      original, published, projection, report.zones.front().center, 150.0);
  ASSERT_EQ(crossings.size(), 2u);
  for (const auto& c : crossings) {
    EXPECT_LT(c.entry_time, c.exit_time);
    EXPECT_NE(c.true_exit, model::kInvalidUser);
  }
}

TEST(TimingAttack, SymmetricCrossingIsAmbiguous) {
  // Both users have identical transit times: the timing attack cannot do
  // better than an arbitrary pick — over the two possible matchings it
  // scores either 0 or 1 entirely by greedy order, never "both confidently
  // right AND both confidently wrong". Just assert it runs and produces a
  // full matching with finite confidence.
  const model::Dataset original = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  const mech::MixZone mixzone;
  util::Rng rng(2);
  mech::MixZoneReport report;
  const model::Dataset published =
      mixzone.ApplyWithReport(original, rng, report);
  ASSERT_GE(report.occurrences, 1u);
  const TimingAttack attack;
  auto crossings = attack.ObserveCrossings(
      original, published, projection, report.zones.front().center, 150.0);
  const auto matches = attack.Match(std::move(crossings));
  ASSERT_EQ(matches.size(), 2u);
  for (const auto& m : matches) {
    EXPECT_NE(m.matched_exit, model::kInvalidUser);
    EXPECT_GT(m.confidence, 0.0);
    EXPECT_LE(m.confidence, 1.0);
  }
}

TEST(TimingAttack, DistinctTransitTimesAreLinkable) {
  // A fast crosser and a slow crosser: transit times differ sharply, so
  // timing alone re-links both correctly — the failure mode the paper's
  // "reasonably small" zones mitigate (small zones -> similar transits).
  const geo::LocalProjection projection(kOrigin);
  model::Dataset original;
  const auto fast = original.InternUser("fast");
  const auto slow = original.InternUser("slow");
  model::Trace tf;
  tf.set_user(fast);
  model::Trace ts;
  ts.set_user(slow);
  for (int i = 0; i <= 100; ++i) {
    const double s = -1000.0 + 20.0 * i;
    // Fast: 10 m/s (t = i*2); slow: 1 m/s (t = i*20), crossing offset so
    // both are inside the zone window together.
    tf.Append({projection.Unproject({s, 0.0}),
               static_cast<util::Timestamp>(i * 2)});
    ts.Append({projection.Unproject({0.0, s}),
               static_cast<util::Timestamp>(i * 20)});
  }
  original.AddTrace(std::move(tf));
  original.AddTrace(std::move(ts));

  mech::MixZoneConfig config;
  config.zone_radius_m = 150.0;
  config.time_window_s = 600;
  const mech::MixZone mixzone(config);
  util::Rng rng(3);
  mech::MixZoneReport report;
  const model::Dataset published =
      mixzone.ApplyWithReport(original, rng, report);
  if (report.occurrences == 0) GTEST_SKIP() << "no temporal overlap";
  const TimingAttack attack;
  auto crossings = attack.ObserveCrossings(
      original, published, projection, report.zones.front().center, 150.0);
  if (crossings.size() < 2) GTEST_SKIP() << "one-sided crossing";
  const auto matches = attack.Match(std::move(crossings));
  EXPECT_DOUBLE_EQ(TimingAttack::Accuracy(matches), 1.0);
}

TEST(TimingAttack, EmptyInputs) {
  const TimingAttack attack;
  EXPECT_TRUE(attack.Match({}).empty());
  EXPECT_DOUBLE_EQ(TimingAttack::Accuracy({}), 0.0);
}

TEST(TimingAttack, NoZonePassageNoCrossings) {
  const model::Dataset original = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  const TimingAttack attack;
  // Published == original (no suppression hole): no observable crossings.
  const auto crossings = attack.ObserveCrossings(
      original, original, projection, {0.0, 0.0}, 150.0);
  EXPECT_TRUE(crossings.empty());
}

}  // namespace
}  // namespace mobipriv::attacks
