#include "geo/distance.h"

#include <gtest/gtest.h>

namespace mobipriv::geo {
namespace {

TEST(GeoDistanceFn, DefaultIsHaversine) {
  const auto distance = DefaultGeoDistance();
  const LatLng a{45.764, 4.8357};
  const LatLng b{45.774, 4.8457};
  EXPECT_DOUBLE_EQ(distance(a, b), HaversineDistance(a, b));
}

TEST(GeoDistanceFn, FastIsEquirectangular) {
  const auto distance = FastGeoDistance();
  const LatLng a{45.764, 4.8357};
  const LatLng b{45.774, 4.8457};
  EXPECT_DOUBLE_EQ(distance(a, b), EquirectangularDistance(a, b));
}

TEST(GeoDistanceFn, FastApproximatesDefaultAtCityScale) {
  const auto exact = DefaultGeoDistance();
  const auto fast = FastGeoDistance();
  const LatLng a{45.70, 4.80};
  const LatLng b{45.80, 4.90};
  const double d_exact = exact(a, b);
  EXPECT_NEAR(fast(a, b), d_exact, d_exact * 0.005);
}

TEST(PathLengthGeo, SumsSegments) {
  const std::vector<LatLng> path{{45.00, 4.0}, {45.01, 4.0}, {45.02, 4.0}};
  EXPECT_NEAR(PathLength(path), 2224.0, 5.0);
  EXPECT_DOUBLE_EQ(PathLength(std::vector<LatLng>{}), 0.0);
  EXPECT_DOUBLE_EQ(PathLength(std::vector<LatLng>{{45.0, 4.0}}), 0.0);
}

TEST(PathLengthPlanar, SumsSegments) {
  const std::vector<Point2> path{{0.0, 0.0}, {3.0, 4.0}, {3.0, 10.0}};
  EXPECT_DOUBLE_EQ(PathLength(path), 11.0);
  EXPECT_DOUBLE_EQ(PathLength(std::vector<Point2>{}), 0.0);
}

}  // namespace
}  // namespace mobipriv::geo
