#include "metrics/spatial_distortion.h"

#include <gtest/gtest.h>

#include "geo/projection.h"

namespace mobipriv::metrics {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

model::Trace EastboundTrace(model::UserId user, double offset_north_m,
                            util::Timestamp t0 = 0) {
  const geo::LocalProjection projection(kOrigin);
  model::Trace trace;
  trace.set_user(user);
  for (int i = 0; i <= 20; ++i) {
    trace.Append({projection.Unproject({i * 100.0, offset_north_m}),
                  t0 + static_cast<util::Timestamp>(i * 60)});
  }
  return trace;
}

TEST(SynchronizedDeviation, ZeroForIdenticalTraces) {
  const auto trace = EastboundTrace(0, 0.0);
  const auto d = SynchronizedDeviation(trace, trace);
  ASSERT_EQ(d.size(), trace.size());
  for (const double x : d) EXPECT_NEAR(x, 0.0, 1e-6);
}

TEST(SynchronizedDeviation, ConstantOffset) {
  const auto original = EastboundTrace(0, 0.0);
  const auto shifted = EastboundTrace(0, 250.0);
  for (const double x : SynchronizedDeviation(original, shifted)) {
    EXPECT_NEAR(x, 250.0, 1.0);
  }
}

TEST(SynchronizedDeviation, CapturesTimeDistortion) {
  // Same geometry, but published twice as fast then stationary: at late
  // original times the published interpolation sits at the east end.
  const geo::LocalProjection projection(kOrigin);
  const auto original = EastboundTrace(0, 0.0);  // 100 m per 60 s
  model::Trace fast;
  fast.set_user(0);
  for (int i = 0; i <= 20; ++i) {
    fast.Append({projection.Unproject({i * 100.0, 0.0}),
                 static_cast<util::Timestamp>(i * 30)});
  }
  const auto d = SynchronizedDeviation(original, fast);
  // At t=600 the original is at 1000 m; 'fast' is already at 2000 m.
  EXPECT_NEAR(d[10], 1000.0, 5.0);
  // Geometry-only deviation stays zero.
  for (const double x : PathDeviation(original, fast)) {
    EXPECT_NEAR(x, 0.0, 1e-6);
  }
}

TEST(PathDeviation, MeasuresGeometricError) {
  const auto original = EastboundTrace(0, 0.0);
  const auto shifted = EastboundTrace(0, 100.0);
  for (const double x : PathDeviation(original, shifted)) {
    EXPECT_NEAR(x, 100.0, 0.5);
  }
}

TEST(Deviation, EmptyInputs) {
  const auto trace = EastboundTrace(0, 0.0);
  EXPECT_TRUE(SynchronizedDeviation(model::Trace{}, trace).empty());
  EXPECT_TRUE(SynchronizedDeviation(trace, model::Trace{}).empty());
  EXPECT_TRUE(PathDeviation(model::Trace{}, trace).empty());
}

TEST(MeasureDistortion, MatchesByUserAndOverlap) {
  model::Dataset original;
  original.InternUser("a");
  original.InternUser("b");
  original.AddTrace(EastboundTrace(0, 0.0));
  original.AddTrace(EastboundTrace(1, 5000.0));
  model::Dataset published;
  published.InternUser("a");
  published.InternUser("b");
  published.AddTrace(EastboundTrace(0, 100.0));   // a: shifted 100 m
  published.AddTrace(EastboundTrace(1, 5300.0));  // b: shifted 300 m
  const auto summary = MeasureDistortion(original, published);
  EXPECT_EQ(summary.compared_traces, 2u);
  EXPECT_EQ(summary.skipped_traces, 0u);
  EXPECT_NEAR(summary.path_m.mean, 200.0, 2.0);  // average of 100 and 300
}

TEST(MeasureDistortion, SkipsUnmatchedTraces) {
  model::Dataset original;
  original.InternUser("a");
  original.AddTrace(EastboundTrace(0, 0.0));
  model::Dataset published;  // user exists but no overlapping trace
  published.InternUser("a");
  published.AddTrace(EastboundTrace(0, 0.0, /*t0=*/999999));
  const auto summary = MeasureDistortion(original, published);
  EXPECT_EQ(summary.compared_traces, 0u);
  EXPECT_EQ(summary.skipped_traces, 1u);
  EXPECT_FALSE(summary.ToString().empty());
}

}  // namespace
}  // namespace mobipriv::metrics
