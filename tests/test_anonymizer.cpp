// Integration tests of the full pipeline (core::Anonymizer): the paper's
// end-to-end privacy and utility claims on synthetic worlds.
#include "core/anonymizer.h"

#include <gtest/gtest.h>

#include "attacks/poi_extraction.h"
#include "core/report.h"
#include "metrics/poi_metrics.h"
#include "model/stats.h"
#include "synth/population.h"

namespace mobipriv::core {
namespace {

synth::PopulationConfig SmallWorldConfig() {
  synth::PopulationConfig config;
  config.agents = 6;
  config.days = 1;
  config.seed = 2015;
  return config;
}

TEST(Anonymizer, PipelinePreservesUserIdSpace) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  const Anonymizer anonymizer;
  util::Rng rng(1);
  const model::Dataset published = anonymizer.Apply(world.dataset(), rng);
  EXPECT_EQ(published.UserCount(), world.dataset().UserCount());
  EXPECT_GT(published.EventCount(), 0u);
  for (const auto& trace : published.traces()) {
    EXPECT_TRUE(trace.IsTimeOrdered());
    EXPECT_LT(trace.user(), published.UserCount());
  }
}

TEST(Anonymizer, PublishedTracesHaveConstantSpeed) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  AnonymizerConfig config;
  config.enable_mixzones = false;  // isolate stage 1
  const Anonymizer anonymizer(config);
  util::Rng rng(1);
  const model::Dataset published = anonymizer.Apply(world.dataset(), rng);
  ASSERT_GT(published.TraceCount(), 0u);
  for (const auto& trace : published.traces()) {
    if (trace.size() < 4) continue;
    EXPECT_LT(model::SpeedCoefficientOfVariation(trace), 0.2)
        << "trace of user " << trace.user();
  }
}

TEST(Anonymizer, HidesPoisEndToEnd) {
  // The paper's headline claim: the attack that finds nearly every POI in
  // the raw data finds none in the publication.
  const synth::SyntheticWorld world(SmallWorldConfig());
  const Anonymizer anonymizer;
  util::Rng rng(7);
  const model::Dataset published = anonymizer.Apply(world.dataset(), rng);

  const attacks::PoiExtractor extractor;
  const auto frame = attacks::DatasetProjection(world.dataset());
  const auto truth = metrics::DistinctTruePlaces(
      world.ground_truth(), world.projection(), frame);
  const auto raw_score = metrics::ScorePoiExtraction(
      extractor.Extract(world.dataset(), frame), truth);
  const auto published_score = metrics::ScorePoiExtraction(
      extractor.Extract(published, frame), truth);
  EXPECT_GT(raw_score.Recall(), 0.7) << "attack must work on raw data";
  EXPECT_LT(published_score.Recall(), 0.05)
      << "attack must fail on published data";
}

TEST(Anonymizer, ReportAccounting) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  const Anonymizer anonymizer;
  util::Rng rng(3);
  PipelineReport report;
  const model::Dataset published =
      anonymizer.ApplyWithReport(world.dataset(), rng, report);
  EXPECT_EQ(report.input_events, world.dataset().EventCount());
  EXPECT_EQ(report.input_traces, world.dataset().TraceCount());
  EXPECT_EQ(report.output_events, published.EventCount());
  EXPECT_LE(report.output_events, report.after_smoothing_events);
  EXPECT_EQ(report.after_smoothing_events - report.mixzone.suppressed_events,
            report.output_events);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(Anonymizer, StagesCanBeDisabled) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  AnonymizerConfig both_off;
  both_off.enable_speed_smoothing = false;
  both_off.enable_mixzones = false;
  const Anonymizer anonymizer(both_off);
  util::Rng rng(1);
  const model::Dataset published = anonymizer.Apply(world.dataset(), rng);
  EXPECT_EQ(published.EventCount(), world.dataset().EventCount());
  EXPECT_EQ(anonymizer.Name(), "ours[]");
  AnonymizerConfig speed_only;
  speed_only.enable_mixzones = false;
  EXPECT_EQ(Anonymizer(speed_only).Name(), "ours[speed]");
  EXPECT_EQ(Anonymizer{}.Name(), "ours[speed+mix]");
}

TEST(Anonymizer, DeterministicGivenSeed) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  const Anonymizer anonymizer;
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  const model::Dataset a = anonymizer.Apply(world.dataset(), rng_a);
  const model::Dataset b = anonymizer.Apply(world.dataset(), rng_b);
  ASSERT_EQ(a.TraceCount(), b.TraceCount());
  ASSERT_EQ(a.EventCount(), b.EventCount());
  for (std::size_t i = 0; i < a.TraceCount(); ++i) {
    EXPECT_EQ(a.traces()[i].user(), b.traces()[i].user());
    EXPECT_EQ(a.traces()[i].front(), b.traces()[i].front());
    EXPECT_EQ(a.traces()[i].back(), b.traces()[i].back());
  }
}

TEST(Evaluate, ProducesConsistentReport) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  const Anonymizer anonymizer;
  util::Rng rng(5);
  const model::Dataset published = anonymizer.Apply(world.dataset(), rng);
  const EvaluationReport report =
      Evaluate(world, published, anonymizer.Name());
  EXPECT_EQ(report.mechanism, anonymizer.Name());
  EXPECT_GT(report.extracted_pois_raw, 0u);
  EXPECT_GE(report.coverage_jaccard, 0.0);
  EXPECT_LE(report.coverage_jaccard, 1.0);
  EXPECT_GE(report.heatmap_cosine, 0.0);
  EXPECT_LE(report.heatmap_cosine, 1.0);
  EXPECT_GT(report.event_retention, 0.0);
  EXPECT_LT(report.event_retention, 1.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(Evaluate, IdentityMechanismScoresPerfectUtility) {
  const synth::SyntheticWorld world(SmallWorldConfig());
  const EvaluationReport report =
      Evaluate(world, world.dataset(), "identity");
  EXPECT_DOUBLE_EQ(report.coverage_jaccard, 1.0);
  EXPECT_NEAR(report.heatmap_cosine, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.event_retention, 1.0);
  EXPECT_DOUBLE_EQ(report.range_queries.relative_error.max, 0.0);
  EXPECT_GT(report.poi.Recall(), 0.7);  // raw data leaks
}

}  // namespace
}  // namespace mobipriv::core
