// Parameterized property sweeps over the utility metrics: identities,
// bounds, symmetry and monotonicity that must hold at every configuration.
#include <gtest/gtest.h>

#include "geo/projection.h"
#include "mechanisms/gaussian_noise.h"
#include "metrics/coverage.h"
#include "metrics/heatmap.h"
#include "metrics/range_queries.h"
#include "metrics/trajectory_stats.h"
#include "synth/population.h"

namespace mobipriv::metrics {
namespace {

const model::Dataset& World() {
  static const model::Dataset dataset = [] {
    synth::PopulationConfig config;
    config.agents = 5;
    config.days = 1;
    config.seed = 2024;
    return synth::SyntheticWorld(config).dataset().Clone();
  }();
  return dataset;
}

model::Dataset Noised(double sigma, std::uint64_t seed) {
  mech::GaussianNoiseConfig config;
  config.sigma_m = sigma;
  const mech::GaussianNoise mechanism(config);
  util::Rng rng(seed);
  return mechanism.Apply(World(), rng);
}

// ------------------------------------------------------------- coverage --

class CoverageProperty : public ::testing::TestWithParam<double> {};

TEST_P(CoverageProperty, BoundsAndIdentity) {
  CoverageConfig config;
  config.cell_size_m = GetParam();
  EXPECT_DOUBLE_EQ(CoverageJaccard(World(), World(), config), 1.0);
  const auto noised = Noised(300.0, 1);
  const double j = CoverageJaccard(World(), noised, config);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
}

TEST_P(CoverageProperty, Symmetry) {
  CoverageConfig config;
  config.cell_size_m = GetParam();
  const auto noised = Noised(200.0, 2);
  EXPECT_DOUBLE_EQ(CoverageJaccard(World(), noised, config),
                   CoverageJaccard(noised, World(), config));
}

TEST_P(CoverageProperty, MoreNoiseNeverHelps) {
  CoverageConfig config;
  config.cell_size_m = GetParam();
  const double mild = CoverageJaccard(World(), Noised(50.0, 3), config);
  const double heavy = CoverageJaccard(World(), Noised(2000.0, 3), config);
  EXPECT_GE(mild, heavy);
}

INSTANTIATE_TEST_SUITE_P(CellSizes, CoverageProperty,
                         ::testing::Values(100.0, 250.0, 500.0, 1000.0));

// -------------------------------------------------------------- heatmap --

class HeatmapProperty : public ::testing::TestWithParam<double> {};

TEST_P(HeatmapProperty, CosineBoundsSymmetryIdentity) {
  HeatmapConfig config;
  config.cell_size_m = GetParam();
  EXPECT_NEAR(HeatmapSimilarity(World(), World(), config), 1.0, 1e-12);
  const auto noised = Noised(500.0, 4);
  const double ab = HeatmapSimilarity(World(), noised, config);
  const double ba = HeatmapSimilarity(noised, World(), config);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0 + 1e-12);
  EXPECT_NEAR(ab, ba, 1e-12);
}

TEST_P(HeatmapProperty, NormalizedL1TriangleWithZero) {
  HeatmapConfig config;
  config.cell_size_m = GetParam();
  const geo::LocalProjection projection(World().BoundingBox().Center());
  const Heatmap a(World(), projection, config);
  const Heatmap b(Noised(300.0, 5), projection, config);
  const double l1 = Heatmap::NormalizedL1(a, b);
  EXPECT_GE(l1, 0.0);
  EXPECT_LE(l1, 2.0 + 1e-12);
  EXPECT_NEAR(Heatmap::NormalizedL1(a, a), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(CellSizes, HeatmapProperty,
                         ::testing::Values(100.0, 250.0, 500.0));

// -------------------------------------------------------- range queries --

class RangeQueryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeQueryProperty, IdentityHasZeroErrorAtAnySeed) {
  util::Rng rng(GetParam());
  const auto queries = SampleQueries(World(), RangeQueryConfig{}, rng);
  const auto report = MeasureRangeQueryError(World(), World(), queries);
  EXPECT_DOUBLE_EQ(report.relative_error.max, 0.0);
}

TEST_P(RangeQueryProperty, ErrorsAreNonNegativeAndFinite) {
  util::Rng rng(GetParam());
  const auto queries = SampleQueries(World(), RangeQueryConfig{}, rng);
  const auto report =
      MeasureRangeQueryError(World(), Noised(400.0, GetParam()), queries);
  EXPECT_GE(report.relative_error.min, 0.0);
  EXPECT_LT(report.relative_error.max, 1e6);
  EXPECT_EQ(report.queries, queries.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeQueryProperty,
                         ::testing::Values(1ULL, 7ULL, 42ULL));

// ---------------------------------------------------- trajectory stats --

class TrajectoryStatsProperty
    : public ::testing::TestWithParam<double> {};

TEST_P(TrajectoryStatsProperty, EmdIsAPseudometricOnSamples) {
  const double sigma = GetParam();
  const auto a = TripLengths(World());
  const auto b = TripLengths(Noised(sigma, 8));
  const auto c = TripLengths(Noised(sigma, 9));
  const double ab = EarthMoversDistance(a, b);
  const double ba = EarthMoversDistance(b, a);
  EXPECT_NEAR(ab, ba, 1e-9);                         // symmetry
  EXPECT_GE(ab, 0.0);                                // non-negativity
  EXPECT_NEAR(EarthMoversDistance(a, a), 0.0, 1e-9); // identity
  // Triangle inequality (loose numerical tolerance).
  const double ac = EarthMoversDistance(a, c);
  const double bc = EarthMoversDistance(b, c);
  EXPECT_LE(ac, ab + bc + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(NoiseScales, TrajectoryStatsProperty,
                         ::testing::Values(50.0, 200.0, 800.0));

}  // namespace
}  // namespace mobipriv::metrics
