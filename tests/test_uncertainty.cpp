#include "privacy/uncertainty.h"

#include <gtest/gtest.h>

#include "synth/population.h"

namespace mobipriv::privacy {
namespace {

TEST(AnonymitySetEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(AnonymitySetEntropyBits(0), 0.0);
  EXPECT_DOUBLE_EQ(AnonymitySetEntropyBits(1), 0.0);
  EXPECT_DOUBLE_EQ(AnonymitySetEntropyBits(2), 1.0);
  EXPECT_DOUBLE_EQ(AnonymitySetEntropyBits(4), 2.0);
  EXPECT_NEAR(AnonymitySetEntropyBits(3), 1.585, 0.001);
}

TEST(MeasureMixingUncertainty, SyntheticReport) {
  model::Dataset dataset;
  dataset.InternUser("a");
  dataset.InternUser("b");
  dataset.InternUser("c");
  mech::MixZoneReport report;
  report.occurrence_details.push_back({0, {0, 1}, true});      // 1 bit
  report.occurrence_details.push_back({0, {0, 1, 2}, false});  // log2(3)
  const auto out = MeasureMixingUncertainty(dataset, report);
  EXPECT_EQ(out.occurrences, 2u);
  EXPECT_NEAR(out.total_bits, 1.0 + 1.585, 0.001);
  ASSERT_EQ(out.per_user.size(), 3u);
  EXPECT_EQ(out.per_user[0].traversals, 2u);   // user a in both
  EXPECT_NEAR(out.per_user[0].cumulative_bits, 2.585, 0.001);
  EXPECT_EQ(out.per_user[2].traversals, 1u);   // user c in one
  EXPECT_NEAR(out.per_user[2].cumulative_bits, 1.585, 0.001);
  EXPECT_FALSE(out.ToString().empty());
}

TEST(MeasureMixingUncertainty, UsersWithoutMixingGetZero) {
  model::Dataset dataset;
  dataset.InternUser("a");
  dataset.InternUser("lonely");
  mech::MixZoneReport report;
  report.occurrence_details.push_back({0, {0}, false});
  const auto out = MeasureMixingUncertainty(dataset, report);
  ASSERT_EQ(out.per_user.size(), 2u);
  EXPECT_DOUBLE_EQ(out.per_user[1].cumulative_bits, 0.0);
  EXPECT_EQ(out.per_user[1].traversals, 0u);
  // A 1-user "occurrence" contributes zero bits.
  EXPECT_DOUBLE_EQ(out.total_bits, 0.0);
}

TEST(MeasureMixingUncertainty, EndToEndWithMixZone) {
  synth::PopulationConfig config;
  config.agents = 6;
  config.days = 1;
  config.seed = 99;
  config.force_shared_hub = true;
  const synth::SyntheticWorld world(config);
  const mech::MixZone mixzone;
  util::Rng rng(1);
  mech::MixZoneReport report;
  (void)mixzone.ApplyWithReport(world.dataset(), rng, report);
  const auto out = MeasureMixingUncertainty(world.dataset(), report);
  EXPECT_EQ(out.occurrences, report.occurrence_details.size());
  EXPECT_EQ(out.per_user.size(), 6u);
  if (out.occurrences > 0) {
    EXPECT_GT(out.total_bits, 0.0);
    EXPECT_GE(out.mean_bits_per_occurrence, 1.0);  // >= 2 users per occ.
  }
  // Occurrence details are consistent with the aggregate counters.
  std::size_t swapped = 0;
  for (const auto& occ : report.occurrence_details) {
    EXPECT_GE(occ.users.size(), 2u);
    if (occ.swapped) ++swapped;
    EXPECT_LT(occ.zone_index, report.zones.size());
  }
  EXPECT_EQ(swapped, report.swaps_applied);
}

}  // namespace
}  // namespace mobipriv::privacy
