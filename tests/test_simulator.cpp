#include "synth/simulator.h"

#include <gtest/gtest.h>

#include "model/stats.h"

namespace mobipriv::synth {
namespace {

struct Fixture {
  Fixture()
      : rng(21),
        network(MakeNetConfig(), rng),
        universe(MakePoiConfig(), network, rng),
        projection(geo::LatLng{45.7640, 4.8357}) {}
  static RoadNetworkConfig MakeNetConfig() {
    RoadNetworkConfig config;
    config.width_m = 3000.0;
    config.height_m = 3000.0;
    config.block_size_m = 150.0;
    return config;
  }
  static PoiUniverseConfig MakePoiConfig() {
    PoiUniverseConfig config;
    config.homes = 10;
    config.workplaces = 4;
    config.leisure = 3;
    config.shops = 2;
    config.transit_hubs = 1;
    return config;
  }
  std::vector<ScheduledVisit> MakePlan(const AgentProfile& profile) const {
    // home 0-2000, travel, work 4000-10000, travel, home 12000-20000.
    return {{profile.home, 0, 2000},
            {profile.work, 4000, 10000},
            {profile.home, 12000, 20000}};
  }
  util::Rng rng;
  RoadNetwork network;
  PoiUniverse universe;
  geo::LocalProjection projection;
};

TEST(Simulator, SessionModeEmitsOneTracePerLeg) {
  Fixture f;
  const Simulator sim(f.network, f.universe, f.projection, SimulatorConfig{});
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  std::vector<model::Trace> traces;
  std::vector<GroundTruthVisit> truth;
  sim.SimulateDay(5, profile, f.MakePlan(profile), f.rng, traces, truth);
  EXPECT_EQ(traces.size(), 2u);  // two legs
  EXPECT_EQ(truth.size(), 3u);   // three visits
  for (const auto& trace : traces) {
    EXPECT_EQ(trace.user(), 5u);
    EXPECT_TRUE(trace.IsTimeOrdered());
    EXPECT_GT(trace.size(), 2u);
  }
}

TEST(Simulator, ContinuousModeEmitsSingleTrace) {
  Fixture f;
  SimulatorConfig config;
  config.continuous_recording = true;
  const Simulator sim(f.network, f.universe, f.projection, config);
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  std::vector<model::Trace> traces;
  std::vector<GroundTruthVisit> truth;
  sim.SimulateDay(5, profile, f.MakePlan(profile), f.rng, traces, truth);
  ASSERT_EQ(traces.size(), 1u);
  // Continuous trace spans the full plan.
  EXPECT_EQ(traces.front().front().time, 0);
  EXPECT_GE(traces.front().back().time, 19900);
}

TEST(Simulator, DwellFixesClusterAtSite) {
  Fixture f;
  SimulatorConfig config;
  config.session_dwell_s = 1800;
  const Simulator sim(f.network, f.universe, f.projection, config);
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  std::vector<model::Trace> traces;
  std::vector<GroundTruthVisit> truth;
  sim.SimulateDay(1, profile, f.MakePlan(profile), f.rng, traces, truth);
  ASSERT_FALSE(traces.empty());
  // First fixes of the first session sit near home.
  const geo::Point2 home = f.universe.site(profile.home).position;
  const auto first = f.projection.Project(traces.front().front().position);
  EXPECT_LT(geo::Distance(first, home), 60.0);
}

TEST(Simulator, SamplingIntervalRespected) {
  Fixture f;
  SimulatorConfig config;
  config.sampling_interval_s = 60;
  const Simulator sim(f.network, f.universe, f.projection, config);
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  std::vector<model::Trace> traces;
  std::vector<GroundTruthVisit> truth;
  sim.SimulateDay(1, profile, f.MakePlan(profile), f.rng, traces, truth);
  for (const auto& trace : traces) {
    for (const double dt : model::InterEventIntervals(trace)) {
      EXPECT_GE(dt, 60.0 - 1e-9);
    }
  }
}

TEST(Simulator, RouteViaHubPassesNearHub) {
  Fixture f;
  const Simulator sim(f.network, f.universe, f.projection, SimulatorConfig{});
  const auto hubs = f.universe.OfCategory(PoiCategory::kTransitHub);
  const auto homes = f.universe.OfCategory(PoiCategory::kHome);
  const auto works = f.universe.OfCategory(PoiCategory::kWork);
  ASSERT_FALSE(hubs.empty());
  const auto path = sim.Route(homes.front(), works.front(), hubs.front());
  ASSERT_GE(path.size(), 2u);
  // Some path vertex must coincide with the hub node.
  const geo::Point2 hub = f.universe.site(hubs.front()).position;
  bool touches_hub = false;
  for (const auto& p : path) {
    if (geo::Distance(p, hub) < 1.0) touches_hub = true;
  }
  EXPECT_TRUE(touches_hub);
}

TEST(Simulator, GroundTruthMatchesPlan) {
  Fixture f;
  const Simulator sim(f.network, f.universe, f.projection, SimulatorConfig{});
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  const auto plan = f.MakePlan(profile);
  std::vector<model::Trace> traces;
  std::vector<GroundTruthVisit> truth;
  sim.SimulateDay(8, profile, plan, f.rng, traces, truth);
  ASSERT_EQ(truth.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(truth[i].user, 8u);
    EXPECT_EQ(truth[i].poi, plan[i].poi);
    EXPECT_EQ(truth[i].arrival, plan[i].arrival);
    EXPECT_EQ(truth[i].departure, plan[i].departure);
  }
}

TEST(Simulator, GpsNoiseBoundedInPractice) {
  Fixture f;
  SimulatorConfig config;
  config.gps_noise_m = 5.0;
  config.dwell_jitter_m = 0.0;
  const Simulator sim(f.network, f.universe, f.projection, config);
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  std::vector<model::Trace> traces;
  std::vector<GroundTruthVisit> truth;
  sim.SimulateDay(1, profile,
                  {{profile.home, 0, 3000}, {profile.work, 100000, 103000}},
                  f.rng, traces, truth);
  ASSERT_FALSE(traces.empty());
  // Only the home dwell-tail fixes (time <= 3000) must hug the site;
  // later fixes belong to the (very slow) travel leg.
  const geo::Point2 home = f.universe.site(profile.home).position;
  std::size_t checked = 0;
  for (const auto& event : traces.front()) {
    if (event.time > 3000) break;
    const auto p = f.projection.Project(event.position);
    EXPECT_LT(geo::Distance(p, home), 50.0);  // 10 sigma
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

}  // namespace
}  // namespace mobipriv::synth
