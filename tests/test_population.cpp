#include "synth/population.h"

#include <gtest/gtest.h>

#include "model/stats.h"

namespace mobipriv::synth {
namespace {

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.agents = 4;
  config.days = 2;
  config.seed = 77;
  config.road.width_m = 3000.0;
  config.road.height_m = 3000.0;
  config.pois.homes = 12;
  config.pois.workplaces = 4;
  config.pois.leisure = 3;
  config.pois.shops = 2;
  config.pois.transit_hubs = 1;
  return config;
}

TEST(SyntheticWorld, GeneratesAllAgents) {
  const SyntheticWorld world(SmallConfig());
  EXPECT_EQ(world.dataset().UserCount(), 4u);
  EXPECT_EQ(world.profiles().size(), 4u);
  EXPECT_GT(world.dataset().EventCount(), 100u);
  // Session mode: at least 2 sessions per agent-day.
  EXPECT_GE(world.dataset().TraceCount(), 4u * 2u * 2u);
}

TEST(SyntheticWorld, TracesAreOrderedAndNonEmpty) {
  const SyntheticWorld world(SmallConfig());
  for (const auto& trace : world.dataset().traces()) {
    EXPECT_GE(trace.size(), 2u);
    EXPECT_TRUE(trace.IsTimeOrdered());
  }
}

TEST(SyntheticWorld, GroundTruthCoversEveryAgentAndDay) {
  const auto config = SmallConfig();
  const SyntheticWorld world(config);
  for (model::UserId user = 0; user < config.agents; ++user) {
    const auto visits = world.VisitsOfUser(user);
    // >= 3 visits per day (home, work, home).
    EXPECT_GE(visits.size(), 3u * config.days) << "user " << user;
    for (const auto& visit : visits) {
      EXPECT_EQ(visit.user, user);
      EXPECT_LT(visit.arrival, visit.departure);
    }
  }
}

TEST(SyntheticWorld, HomeAndWorkRecurDaily) {
  const auto config = SmallConfig();
  const SyntheticWorld world(config);
  // The first visit of each day is the agent's home.
  const auto visits = world.VisitsOfUser(0);
  const PoiId home = world.profiles()[0].home;
  std::size_t home_days = 0;
  for (const auto& visit : visits) {
    if (visit.poi == home &&
        util::SecondsOfDay(visit.arrival) == 0) {
      ++home_days;
    }
  }
  EXPECT_EQ(home_days, config.days);
}

TEST(SyntheticWorld, DeterministicGivenSeed) {
  const SyntheticWorld a(SmallConfig());
  const SyntheticWorld b(SmallConfig());
  ASSERT_EQ(a.dataset().TraceCount(), b.dataset().TraceCount());
  ASSERT_EQ(a.dataset().EventCount(), b.dataset().EventCount());
  for (std::size_t i = 0; i < a.dataset().TraceCount(); ++i) {
    const auto& ta = a.dataset().traces()[i];
    const auto& tb = b.dataset().traces()[i];
    ASSERT_EQ(ta.size(), tb.size());
    EXPECT_EQ(ta.front(), tb.front());
    EXPECT_EQ(ta.back(), tb.back());
  }
}

TEST(SyntheticWorld, DifferentSeedsDiffer) {
  auto config_b = SmallConfig();
  config_b.seed = 78;
  const SyntheticWorld a(SmallConfig());
  const SyntheticWorld b(config_b);
  // Event streams must differ somewhere.
  bool differs = a.dataset().EventCount() != b.dataset().EventCount();
  if (!differs) {
    for (std::size_t i = 0; i < a.dataset().TraceCount() && !differs; ++i) {
      differs = !(a.dataset().traces()[i].front() ==
                  b.dataset().traces()[i].front());
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticWorld, DatasetForDaysSplits) {
  const auto config = SmallConfig();
  const SyntheticWorld world(config);
  const auto day0 = world.DatasetForDays({0});
  const auto day1 = world.DatasetForDays({1});
  const auto both = world.DatasetForDays({0, 1});
  EXPECT_EQ(day0.TraceCount() + day1.TraceCount(), both.TraceCount());
  EXPECT_EQ(both.TraceCount(), world.dataset().TraceCount());
  // User ids preserved across splits.
  EXPECT_EQ(day0.UserCount(), world.dataset().UserCount());
  EXPECT_EQ(day0.UserName(0), world.dataset().UserName(0));
  // Day-0 events all fall before day 1 begins.
  const util::Timestamp day1_start =
      config.start_day + util::kSecondsPerDay;
  for (const auto& trace : day0.traces()) {
    EXPECT_LT(trace.front().time, day1_start);
  }
}

TEST(SyntheticWorld, EventsInsideCityExtent) {
  const SyntheticWorld world(SmallConfig());
  const auto extent = world.network().Extent();
  for (const auto& trace : world.dataset().traces()) {
    for (const auto& event : trace) {
      const geo::Point2 p = world.projection().Project(event.position);
      // Allow jitter + noise slack beyond the road extent.
      EXPECT_GE(p.x, extent.min.x - 100.0);
      EXPECT_LE(p.x, extent.max.x + 100.0);
      EXPECT_GE(p.y, extent.min.y - 100.0);
      EXPECT_LE(p.y, extent.max.y + 100.0);
    }
  }
}

TEST(CrossingPairScenario, TwoUsersShareAHubPath) {
  const auto world = MakeCrossingPairScenario(7);
  EXPECT_EQ(world.dataset().UserCount(), 2u);
  ASSERT_EQ(world.profiles().size(), 2u);
  EXPECT_EQ(world.profiles()[0].commute_hub, world.profiles()[1].commute_hub);
  EXPECT_DOUBLE_EQ(world.profiles()[0].hub_commute_prob, 1.0);
  // Both users pass within a few hundred metres of the hub.
  const geo::Point2 hub =
      world.universe().site(world.profiles()[0].commute_hub).position;
  for (model::UserId user = 0; user < 2; ++user) {
    double best = 1e18;
    for (const auto idx : world.dataset().TracesOfUser(user)) {
      for (const auto& event : world.dataset().traces()[idx]) {
        best = std::min(best, geo::Distance(
                                  world.projection().Project(event.position),
                                  hub));
      }
    }
    EXPECT_LT(best, 300.0) << "user " << user;
  }
}

}  // namespace
}  // namespace mobipriv::synth
