#include "metrics/range_queries.h"

#include <gtest/gtest.h>

#include "geo/projection.h"

namespace mobipriv::metrics {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

model::Dataset SampleDataset() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  std::vector<model::Event> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({projection.Unproject({i * 100.0, 0.0}),
                      static_cast<util::Timestamp>(i * 60)});
  }
  dataset.AddTraceForUser("u", std::move(events));
  return dataset;
}

TEST(CountEvents, SpatialAndTemporalBounds) {
  const auto dataset = SampleDataset();
  RangeQuery everything;
  everything.box = dataset.BoundingBox();
  everything.from = 0;
  everything.to = 100000;
  EXPECT_EQ(CountEvents(dataset, everything), 100u);

  RangeQuery first_half_time = everything;
  first_half_time.to = 49 * 60;
  EXPECT_EQ(CountEvents(dataset, first_half_time), 50u);

  RangeQuery nowhere;
  nowhere.box = geo::GeoBoundingBox({0.0, 0.0}, {1.0, 1.0});
  nowhere.from = 0;
  nowhere.to = 100000;
  EXPECT_EQ(CountEvents(dataset, nowhere), 0u);
}

TEST(SampleQueries, RespectsConfigAndExtent) {
  const auto dataset = SampleDataset();
  RangeQueryConfig config;
  config.query_count = 50;
  util::Rng rng(3);
  const auto queries = SampleQueries(dataset, config, rng);
  ASSERT_EQ(queries.size(), 50u);
  const auto bbox = dataset.BoundingBox();
  for (const auto& query : queries) {
    EXPECT_GE(query.box.SouthWest().lat, bbox.SouthWest().lat - 1e-9);
    EXPECT_LE(query.box.NorthEast().lat, bbox.NorthEast().lat + 1e-9);
    EXPECT_LT(query.from, query.to);
    EXPECT_GE(query.to - query.from, config.min_duration_s);
    EXPECT_LE(query.to - query.from, config.max_duration_s);
  }
}

TEST(SampleQueries, EmptyDatasetYieldsNoQueries) {
  RangeQueryConfig config;
  util::Rng rng(1);
  EXPECT_TRUE(SampleQueries(model::Dataset{}, config, rng).empty());
}

TEST(MeasureRangeQueryError, IdenticalDatasetsZeroError) {
  const auto dataset = SampleDataset();
  util::Rng rng(5);
  const auto queries = SampleQueries(dataset, RangeQueryConfig{}, rng);
  const auto report = MeasureRangeQueryError(dataset, dataset, queries);
  EXPECT_EQ(report.queries, queries.size());
  EXPECT_DOUBLE_EQ(report.relative_error.max, 0.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(MeasureRangeQueryError, EmptyPublicationMaxError) {
  const auto dataset = SampleDataset();
  util::Rng rng(5);
  auto queries = SampleQueries(dataset, RangeQueryConfig{}, rng);
  const auto report =
      MeasureRangeQueryError(dataset, model::Dataset{}, queries);
  // Every query hitting data has relative error 1.
  EXPECT_GT(report.relative_error.mean, 0.0);
  EXPECT_LE(report.relative_error.max, 1.0);
}

TEST(MeasureRangeQueryError, CountsEmptyOriginalQueries) {
  const auto dataset = SampleDataset();
  RangeQuery nowhere;
  nowhere.box = geo::GeoBoundingBox({0.0, 0.0}, {1.0, 1.0});
  nowhere.from = 0;
  nowhere.to = 10;
  const auto report =
      MeasureRangeQueryError(dataset, dataset, {nowhere});
  EXPECT_EQ(report.empty_on_original, 1u);
  EXPECT_DOUBLE_EQ(report.relative_error.max, 0.0);
}

TEST(MeasureRangeQueryError, DetectsCountInflation) {
  const auto original = SampleDataset();
  // Published: every event duplicated.
  model::Dataset doubled;
  for (const auto& trace : original.traces()) {
    std::vector<model::Event> events(trace.begin(), trace.end());
    events.insert(events.end(), trace.begin(), trace.end());
    doubled.AddTraceForUser("u", std::move(events));
  }
  RangeQuery everything;
  everything.box = original.BoundingBox();
  everything.from = 0;
  everything.to = 100000;
  const auto report =
      MeasureRangeQueryError(original, doubled, {everything});
  EXPECT_DOUBLE_EQ(report.relative_error.max, 1.0);  // 2x counts -> error 1
}

}  // namespace
}  // namespace mobipriv::metrics
