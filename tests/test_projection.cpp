#include "geo/projection.h"

#include <gtest/gtest.h>

#include "geo/latlng.h"

namespace mobipriv::geo {
namespace {

TEST(LocalProjection, OriginMapsToZero) {
  const LatLng origin{45.7640, 4.8357};
  const LocalProjection proj(origin);
  const Point2 p = proj.Project(origin);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(LocalProjection, RoundTripCityScale) {
  const LocalProjection proj({45.7640, 4.8357});
  for (const auto& p : {LatLng{45.75, 4.80}, LatLng{45.80, 4.90},
                        LatLng{45.70, 4.85}, LatLng{45.7640, 4.8357}}) {
    const LatLng back = proj.Unproject(proj.Project(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lng, p.lng, 1e-9);
  }
}

TEST(LocalProjection, DistancesMatchHaversineLocally) {
  const LocalProjection proj({45.7640, 4.8357});
  const LatLng a{45.7700, 4.8400};
  const LatLng b{45.7600, 4.8300};
  const double planar = Distance(proj.Project(a), proj.Project(b));
  const double geo = HaversineDistance(a, b);
  EXPECT_NEAR(planar, geo, geo * 0.001);
}

TEST(LocalProjection, AxesOrientation) {
  const LocalProjection proj({45.0, 4.0});
  // North should be +y.
  EXPECT_GT(proj.Project({45.01, 4.0}).y, 0.0);
  EXPECT_NEAR(proj.Project({45.01, 4.0}).x, 0.0, 1e-9);
  // East should be +x.
  EXPECT_GT(proj.Project({45.0, 4.01}).x, 0.0);
  EXPECT_NEAR(proj.Project({45.0, 4.01}).y, 0.0, 1e-9);
}

TEST(LocalProjection, VectorOverloads) {
  const LocalProjection proj({45.0, 4.0});
  const std::vector<LatLng> path{{45.0, 4.0}, {45.01, 4.01}};
  const auto planar = proj.Project(path);
  ASSERT_EQ(planar.size(), 2u);
  const auto back = proj.Unproject(planar);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_NEAR(back[1].lat, 45.01, 1e-9);
  EXPECT_NEAR(back[1].lng, 4.01, 1e-9);
}

TEST(Point2, Algebra) {
  const Point2 a{1.0, 2.0};
  const Point2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Point2{0.5, 1.0}));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Point2{3.0, 4.0}).Norm(), 5.0);
  EXPECT_DOUBLE_EQ((Point2{3.0, 4.0}).NormSquared(), 25.0);
}

TEST(Point2, Normalized) {
  const Point2 v{3.0, 4.0};
  const Point2 n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_EQ((Point2{}).Normalized(), (Point2{}));
}

TEST(Point2, LerpAndMidpoint) {
  const Point2 a{0.0, 0.0};
  const Point2 b{10.0, 20.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), (Point2{5.0, 10.0}));
  EXPECT_EQ(Midpoint(a, b), (Point2{5.0, 10.0}));
}

TEST(Point2, DistanceToSegment) {
  const Point2 a{0.0, 0.0};
  const Point2 b{10.0, 0.0};
  EXPECT_DOUBLE_EQ(DistanceToSegment({5.0, 3.0}, a, b), 3.0);
  EXPECT_DOUBLE_EQ(DistanceToSegment({-4.0, 0.0}, a, b), 4.0);   // beyond a
  EXPECT_DOUBLE_EQ(DistanceToSegment({13.0, 4.0}, a, b), 5.0);   // beyond b
  EXPECT_DOUBLE_EQ(DistanceToSegment({2.0, 0.0}, a, a), 2.0);    // degenerate
}

}  // namespace
}  // namespace mobipriv::geo
