// The streaming world generator: bounded-memory generation must be a pure
// resource strategy. Same bytes at every flush-chunk size, a directory
// ProbeShardStream accepts, OpenShards round-trips in generation order,
// and the engine reports identically whether it streams the directory or
// binds it whole.
#include "synth/streaming_world.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "core/scenario.h"
#include "model/sharded_dataset.h"
#include "util/time_utils.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("mobipriv_sworld_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

synth::StreamingWorldConfig SmallConfig() {
  synth::StreamingWorldConfig config;
  config.population.agents = 30;
  config.population.days = 1;
  config.population.seed = 123;
  config.shard_count = 5;
  return config;
}

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(StreamingWorld, ByteIdenticalAtAnyFlushChunkSize) {
  ScratchDir a("chunk_a");
  ScratchDir b("chunk_b");
  synth::StreamingWorldConfig config = SmallConfig();
  config.flush_chunk_events = 1;
  const auto stats_a = synth::GenerateShardedWorld(config, a.path.string());
  config.flush_chunk_events = 1u << 20;
  const auto stats_b = synth::GenerateShardedWorld(config, b.path.string());

  EXPECT_EQ(stats_a.traces, stats_b.traces);
  EXPECT_EQ(stats_a.events, stats_b.events);
  EXPECT_GT(stats_a.events, 0u);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    const std::string name = fs::path(model::ShardDataPath("", s)).filename();
    EXPECT_EQ(ReadFileBytes(a.path / name), ReadFileBytes(b.path / name))
        << name;
  }
  EXPECT_EQ(ReadFileBytes(a.path / "manifest.mpm"),
            ReadFileBytes(b.path / "manifest.mpm"));
}

TEST(StreamingWorld, OpenShardsRoundTripsInGenerationOrder) {
  ScratchDir scratch("roundtrip");
  const auto stats =
      synth::GenerateShardedWorld(SmallConfig(), scratch.path.string());

  const model::ShardedDataset opened =
      model::ShardedDataset::OpenShards(scratch.path.string());
  EXPECT_EQ(opened.ShardCount(), stats.shards);
  EXPECT_EQ(opened.TraceCount(), stats.traces);
  EXPECT_EQ(opened.EventCount(), stats.events);
  // Every agent is in the global table, traces or not.
  EXPECT_EQ(opened.UserCount(), SmallConfig().population.agents);

  // The recorded origin replays generation order: agents ascend, and each
  // agent's traces are consecutive and time-ordered within a day.
  const model::Dataset merged = opened.Merge();
  ASSERT_EQ(merged.TraceCount(), stats.traces);
  std::size_t last_agent = 0;
  for (const model::Trace& trace : merged.traces()) {
    const std::string name = merged.UserName(trace.user());
    ASSERT_TRUE(name.rfind("agent", 0) == 0) << name;
    const std::size_t agent = std::stoul(name.substr(5));
    EXPECT_GE(agent, last_agent) << "traces out of generation order";
    last_agent = agent;
    EXPECT_GE(trace.size(), 2u);
  }
}

TEST(StreamingWorld, EngineStreamsGeneratedDirectoryIdentically) {
  ScratchDir scratch("engine");
  (void)synth::GenerateShardedWorld(SmallConfig(), scratch.path.string());
  ASSERT_TRUE(core::ProbeShardStream(scratch.path.string()).has_value());

  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::ShardDir(scratch.path.string());
  spec.mechanisms = {"gaussian", "cloaking"};
  spec.evaluators = {"trajectory_stats", "range_queries[n=16]"};
  spec.seeds = {3};

  // Whole-view reference: the watchdog (generous enough to never fire)
  // disqualifies streaming without affecting any result.
  core::ScenarioSpec whole_spec = spec;
  whole_spec.node_timeout_ms = 1e9;
  core::ScenarioEngine whole(std::move(whole_spec));
  const std::string reference = whole.Run().ToCsv();
  ASSERT_EQ(whole.stats().streamed_shards, 0u);

  core::ScenarioEngine streamed(std::move(spec));
  const core::Report report = streamed.Run();
  EXPECT_EQ(streamed.stats().streamed_shards, SmallConfig().shard_count);
  EXPECT_TRUE(report.AllOk());
  EXPECT_EQ(report.ToCsv(), reference);
}

}  // namespace
}  // namespace mobipriv
