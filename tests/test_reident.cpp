#include "attacks/reident.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mobipriv::attacks {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// Trace dwelling 30 min at `site` then 30 min at `site2` (travel between).
model::Trace TwoPoiTrace(const geo::LocalProjection& projection,
                         geo::Point2 site, geo::Point2 site2,
                         util::Timestamp start, model::UserId user,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  model::Trace trace;
  trace.set_user(user);
  util::Timestamp t = start;
  for (; t <= start + 1800; t += 30) {
    trace.Append({projection.Unproject({site.x + rng.Uniform(-8.0, 8.0),
                                        site.y + rng.Uniform(-8.0, 8.0)}),
                  t});
  }
  const util::Timestamp travel_start = t;
  const double dist = geo::Distance(site, site2);
  const util::Timestamp travel_s =
      std::max<util::Timestamp>(60, static_cast<util::Timestamp>(dist / 10.0));
  for (; t < travel_start + travel_s; t += 30) {
    const double alpha = static_cast<double>(t - travel_start) /
                         static_cast<double>(travel_s);
    trace.Append(
        {projection.Unproject(geo::Lerp(site, site2, alpha)), t});
  }
  for (const util::Timestamp end = t + 1800; t <= end; t += 30) {
    trace.Append({projection.Unproject({site2.x + rng.Uniform(-8.0, 8.0),
                                        site2.y + rng.Uniform(-8.0, 8.0)}),
                  t});
  }
  return trace;
}

struct TwoUserFixture {
  TwoUserFixture() : projection(kOrigin) {
    // Users with well-separated home/work pairs.
    train.InternUser("alice");
    train.InternUser("bob");
    test.InternUser("alice");
    test.InternUser("bob");
    train.AddTrace(
        TwoPoiTrace(projection, {0.0, 0.0}, {3000.0, 0.0}, 0, 0, 1));
    train.AddTrace(
        TwoPoiTrace(projection, {0.0, 8000.0}, {3000.0, 8000.0}, 0, 1, 2));
    // Next day, same places.
    test.AddTrace(
        TwoPoiTrace(projection, {0.0, 0.0}, {3000.0, 0.0}, 86400, 0, 3));
    test.AddTrace(
        TwoPoiTrace(projection, {0.0, 8000.0}, {3000.0, 8000.0}, 86400, 1, 4));
  }
  geo::LocalProjection projection;
  model::Dataset train;
  model::Dataset test;
};

TEST(Reident, BuildProfilesOnePerUser) {
  TwoUserFixture f;
  const ReidentificationAttack attack;
  const auto profiles = attack.BuildProfiles(f.train, f.projection);
  ASSERT_EQ(profiles.size(), 2u);
  for (const auto& profile : profiles) {
    EXPECT_EQ(profile.pois.size(), 2u);  // home + work
    EXPECT_EQ(profile.weights.size(), 2u);
    for (const double w : profile.weights) EXPECT_GT(w, 0.0);
  }
}

TEST(Reident, LinksRawTracesCorrectly) {
  TwoUserFixture f;
  const ReidentificationAttack attack;
  const auto profiles = attack.BuildProfiles(f.train, f.projection);
  const auto results = attack.Attack(profiles, f.test, f.projection);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.linkable);
    EXPECT_EQ(r.predicted_user, r.true_user);
    EXPECT_LT(r.distance, 100.0);
  }
  EXPECT_DOUBLE_EQ(ReidentificationAttack::Accuracy(results), 1.0);
}

TEST(Reident, UnlinkableWhenNoPoisSurvive) {
  TwoUserFixture f;
  const ReidentificationAttack attack;
  const auto profiles = attack.BuildProfiles(f.train, f.projection);
  // Constant-motion trace: no stays extractable.
  model::Dataset moving;
  moving.InternUser("alice");
  model::Trace trace;
  trace.set_user(0);
  for (int i = 0; i < 100; ++i) {
    trace.Append({f.projection.Unproject({i * 300.0, 0.0}),
                  static_cast<util::Timestamp>(86400 + i * 30)});
  }
  moving.AddTrace(std::move(trace));
  const auto results = attack.Attack(profiles, moving, f.projection);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results.front().linkable);
  EXPECT_DOUBLE_EQ(ReidentificationAttack::Accuracy(results), 0.0);
  EXPECT_DOUBLE_EQ(
      ReidentificationAttack::Accuracy(results,
                                       /*count_unlinkable_as_failure=*/false),
      0.0);
}

TEST(Reident, ProfileDistanceProperties) {
  MobilityProfile a;
  a.pois = {{0.0, 0.0}, {1000.0, 0.0}};
  a.weights = {1.0, 1.0};
  MobilityProfile b;
  b.pois = {{0.0, 0.0}, {1000.0, 0.0}};
  b.weights = {5.0, 1.0};
  // Identical POI sets -> distance 0 (weights affect averaging only).
  EXPECT_DOUBLE_EQ(ReidentificationAttack::ProfileDistance(a, b), 0.0);
  MobilityProfile c;
  c.pois = {{0.0, 500.0}, {1000.0, 500.0}};
  c.weights = {1.0, 1.0};
  EXPECT_NEAR(ReidentificationAttack::ProfileDistance(a, c), 500.0, 1e-9);
  // Symmetry.
  EXPECT_DOUBLE_EQ(ReidentificationAttack::ProfileDistance(a, c),
                   ReidentificationAttack::ProfileDistance(c, a));
}

TEST(Reident, ProfileDistanceEmptyIsInfinite) {
  MobilityProfile a;
  a.pois = {{0.0, 0.0}};
  a.weights = {1.0};
  const MobilityProfile empty;
  EXPECT_TRUE(std::isinf(ReidentificationAttack::ProfileDistance(a, empty)));
}

TEST(Reident, AccuracyEmptyResults) {
  EXPECT_DOUBLE_EQ(ReidentificationAttack::Accuracy({}), 0.0);
}

TEST(Reident, WeightsBiasTowardLongDwells) {
  // One-sided distance weighting: a profile whose long-dwell POI matches
  // should beat one whose short-dwell POI matches.
  MobilityProfile target;
  target.pois = {{0.0, 0.0}, {5000.0, 0.0}};
  target.weights = {10000.0, 100.0};  // mostly at the first place
  MobilityProfile match_major;
  match_major.pois = {{0.0, 0.0}};  // matches the heavy POI
  match_major.weights = {1.0};
  MobilityProfile match_minor;
  match_minor.pois = {{5000.0, 0.0}};  // matches the light POI
  match_minor.weights = {1.0};
  EXPECT_LT(ReidentificationAttack::ProfileDistance(target, match_major),
            ReidentificationAttack::ProfileDistance(target, match_minor));
}

}  // namespace
}  // namespace mobipriv::attacks
