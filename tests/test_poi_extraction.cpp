#include "attacks/poi_extraction.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mobipriv::attacks {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// Builds a trace dwelling at planar `site` for `dwell_s` (fix every 30 s,
/// jitter < 10 m), then moving away fast.
model::Trace DwellThenMove(const geo::LocalProjection& projection,
                           geo::Point2 site, util::Timestamp start,
                           util::Timestamp dwell_s, model::UserId user) {
  util::Rng rng(start + user);
  model::Trace trace;
  trace.set_user(user);
  for (util::Timestamp t = 0; t <= dwell_s; t += 30) {
    const geo::Point2 p{site.x + rng.Uniform(-10.0, 10.0),
                        site.y + rng.Uniform(-10.0, 10.0)};
    trace.Append({projection.Unproject(p), start + t});
  }
  // Depart at ~15 m/s for 10 fixes.
  for (int i = 1; i <= 10; ++i) {
    const geo::Point2 p{site.x + 450.0 * i, site.y};
    trace.Append({projection.Unproject(p), start + dwell_s + 30 * i});
  }
  return trace;
}

TEST(PoiExtractor, FindsALongDwell) {
  const geo::LocalProjection projection(kOrigin);
  const PoiExtractor extractor;
  const auto trace =
      DwellThenMove(projection, {500.0, 500.0}, 1000, 1800, 1);
  const auto stays = extractor.ExtractStays(trace, projection);
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_EQ(stays.front().user, 1u);
  EXPECT_GE(stays.front().departure - stays.front().arrival, 1800 - 60);
  EXPECT_LT(geo::Distance(stays.front().centroid, {500.0, 500.0}), 30.0);
  EXPECT_GT(stays.front().support, 30u);
}

TEST(PoiExtractor, IgnoresShortStops) {
  const geo::LocalProjection projection(kOrigin);
  PoiExtractionConfig config;
  config.min_duration_s = 900;
  const PoiExtractor extractor(config);
  // 5-minute stop only.
  const auto trace = DwellThenMove(projection, {0.0, 0.0}, 0, 300, 1);
  EXPECT_TRUE(extractor.ExtractStays(trace, projection).empty());
}

TEST(PoiExtractor, IgnoresConstantMovement) {
  const geo::LocalProjection projection(kOrigin);
  const PoiExtractor extractor;
  model::Trace trace;
  trace.set_user(2);
  // 10 m/s straight line, fix each 30 s: never 15 min inside 200 m.
  for (int i = 0; i < 200; ++i) {
    trace.Append({projection.Unproject({i * 300.0, 0.0}),
                  static_cast<util::Timestamp>(i * 30)});
  }
  EXPECT_TRUE(extractor.ExtractStays(trace, projection).empty());
}

TEST(PoiExtractor, SplitsTwoSeparatedDwells) {
  const geo::LocalProjection projection(kOrigin);
  const PoiExtractor extractor;
  auto trace = DwellThenMove(projection, {0.0, 0.0}, 0, 1800, 3);
  const auto second =
      DwellThenMove(projection, {5000.0, 0.0}, 4000, 1800, 3);
  for (const auto& event : second) trace.Append(event);
  const auto stays = extractor.ExtractStays(trace, projection);
  ASSERT_EQ(stays.size(), 2u);
  EXPECT_LT(stays[0].centroid.x, 100.0);
  EXPECT_GT(stays[1].centroid.x, 4900.0);
}

TEST(PoiExtractor, MergesRepeatedVisitsIntoOnePoi) {
  const geo::LocalProjection projection(kOrigin);
  const PoiExtractor extractor;
  model::Dataset dataset;
  const model::UserId user = dataset.InternUser("u");
  // Two separate traces dwelling at the same place (e.g. home on two days).
  auto t1 = DwellThenMove(projection, {100.0, 100.0}, 0, 1800, user);
  auto t2 = DwellThenMove(projection, {110.0, 95.0}, 90000, 1800, user);
  dataset.AddTrace(std::move(t1));
  dataset.AddTrace(std::move(t2));
  const auto pois = extractor.Extract(dataset, projection);
  ASSERT_EQ(pois.size(), 1u);
  EXPECT_EQ(pois.front().visits, 2u);
  EXPECT_GE(pois.front().total_dwell_s, 2 * 1700);
}

TEST(PoiExtractor, KeepsUsersSeparate) {
  const geo::LocalProjection projection(kOrigin);
  const PoiExtractor extractor;
  model::Dataset dataset;
  const auto a = dataset.InternUser("a");
  const auto b = dataset.InternUser("b");
  dataset.AddTrace(DwellThenMove(projection, {0.0, 0.0}, 0, 1800, a));
  dataset.AddTrace(DwellThenMove(projection, {0.0, 0.0}, 0, 1800, b));
  const auto pois = extractor.Extract(dataset, projection);
  ASSERT_EQ(pois.size(), 2u);
  EXPECT_NE(pois[0].user, pois[1].user);
}

TEST(PoiExtractor, EmptyInputs) {
  const geo::LocalProjection projection(kOrigin);
  const PoiExtractor extractor;
  EXPECT_TRUE(extractor.ExtractStays(model::Trace{}, projection).empty());
  EXPECT_TRUE(extractor.Extract(model::Dataset{}).empty());
}

TEST(PoiExtractor, DiameterBoundsTheStayExtent) {
  const geo::LocalProjection projection(kOrigin);
  PoiExtractionConfig config;
  config.max_diameter_m = 100.0;
  config.min_duration_s = 300;
  const PoiExtractor extractor(config);
  model::Trace trace;
  trace.set_user(1);
  // Slow drift: 1 m/s. Within any 100 m window the user spends 100 s
  // < 300 s, so no stay despite the low speed.
  for (int i = 0; i < 100; ++i) {
    trace.Append({projection.Unproject({i * 30.0, 0.0}),
                  static_cast<util::Timestamp>(i * 30)});
  }
  EXPECT_TRUE(extractor.ExtractStays(trace, projection).empty());
}

TEST(DatasetProjection, CenteredOnData) {
  model::Dataset dataset;
  dataset.AddTraceForUser("u", {{{45.0, 4.0}, 1}, {{46.0, 5.0}, 2}});
  const auto projection = DatasetProjection(dataset);
  EXPECT_NEAR(projection.Origin().lat, 45.5, 1e-9);
  EXPECT_NEAR(projection.Origin().lng, 4.5, 1e-9);
}

}  // namespace
}  // namespace mobipriv::attacks
