#include "synth/schedule.h"

#include <gtest/gtest.h>

namespace mobipriv::synth {
namespace {

struct Fixture {
  Fixture() : rng(13), network(MakeNetConfig(), rng),
              universe(PoiUniverseConfig{}, network, rng) {}
  static RoadNetworkConfig MakeNetConfig() {
    RoadNetworkConfig config;
    config.width_m = 3000.0;
    config.height_m = 3000.0;
    config.block_size_m = 150.0;
    return config;
  }
  util::Rng rng;
  RoadNetwork network;
  PoiUniverse universe;
};

TEST(SampleProfile, AssignsAllRoles) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    const AgentProfile profile = SampleProfile(f.universe, f.rng);
    EXPECT_NE(profile.home, kInvalidPoi);
    EXPECT_NE(profile.work, kInvalidPoi);
    EXPECT_EQ(f.universe.site(profile.home).category, PoiCategory::kHome);
    EXPECT_EQ(f.universe.site(profile.work).category, PoiCategory::kWork);
    EXPECT_GE(profile.favourite_leisure.size(), 1u);
    EXPECT_LE(profile.favourite_leisure.size(), 3u);
    EXPECT_GT(profile.travel_speed_mps, 0.0);
    EXPECT_GE(profile.hub_commute_prob, 0.0);
    EXPECT_LE(profile.hub_commute_prob, 1.0);
    EXPECT_NE(profile.commute_hub, kInvalidPoi);
  }
}

TEST(GenerateDayPlan, StructureIsHomeWorkHome) {
  Fixture f;
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  ScheduleConfig config;
  config.evening_leisure_prob = 0.0;
  config.evening_shop_prob = 0.0;
  const util::Timestamp day = 1433116800;
  const auto plan = GenerateDayPlan(profile, f.universe, config, day, f.rng);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].poi, profile.home);
  EXPECT_EQ(plan[1].poi, profile.work);
  EXPECT_EQ(plan[2].poi, profile.home);
}

TEST(GenerateDayPlan, VisitsAreOrderedAndLeaveTravelSlack) {
  Fixture f;
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  const util::Timestamp day = 1433116800;
  for (int i = 0; i < 10; ++i) {
    const auto plan =
        GenerateDayPlan(profile, f.universe, ScheduleConfig{}, day, f.rng);
    ASSERT_GE(plan.size(), 3u);
    for (const auto& visit : plan) {
      EXPECT_LT(visit.arrival, visit.departure);
    }
    for (std::size_t k = 1; k < plan.size(); ++k) {
      EXPECT_GT(plan[k].arrival, plan[k - 1].departure)
          << "no travel slack before stop " << k;
    }
  }
}

TEST(GenerateDayPlan, SpansTheDay) {
  Fixture f;
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  const util::Timestamp day = 1433116800;
  const auto plan =
      GenerateDayPlan(profile, f.universe, ScheduleConfig{}, day, f.rng);
  EXPECT_EQ(plan.front().arrival, day);
  EXPECT_GE(plan.back().departure, day + util::kSecondsPerDay);
}

TEST(GenerateDayPlan, WorkBlockIsSubstantial) {
  Fixture f;
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  const util::Timestamp day = 1433116800;
  const auto plan =
      GenerateDayPlan(profile, f.universe, ScheduleConfig{}, day, f.rng);
  // Second stop is work; default config keeps it >= 4 h.
  EXPECT_GE(plan[1].departure - plan[1].arrival,
            4 * util::kSecondsPerHour);
}

TEST(GenerateDayPlan, EveningActivityRespectsProbabilities) {
  Fixture f;
  const AgentProfile profile = SampleProfile(f.universe, f.rng);
  ScheduleConfig always;
  always.evening_leisure_prob = 1.0;
  const util::Timestamp day = 1433116800;
  const auto plan =
      GenerateDayPlan(profile, f.universe, always, day, f.rng);
  ASSERT_EQ(plan.size(), 4u);
  const auto category = f.universe.site(plan[2].poi).category;
  EXPECT_EQ(category, PoiCategory::kLeisure);
}

}  // namespace
}  // namespace mobipriv::synth
