// The parallel batch engine's core contract: output is byte-identical
// whatever the worker count. Every stochastic stage derives per-trace RNG
// streams from one master draw, so a serial run (parallelism 1) and a
// multi-threaded run (parallelism 8) of the same seed must produce exactly
// the same datasets, reports and attack results.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "core/anonymizer.h"
#include "mechanisms/geo_indistinguishability.h"
#include "synth/population.h"
#include "util/thread_pool.h"

namespace mobipriv {
namespace {

constexpr std::uint64_t kSeed = 20150629;

model::Dataset TestWorldDataset() {
  synth::PopulationConfig config;
  config.agents = 12;
  config.days = 2;
  config.seed = 77;
  return synth::SyntheticWorld(config).dataset();
}

/// Exact (bitwise) dataset equality: same users, same traces in the same
/// order, same events with identical coordinates and timestamps.
void ExpectDatasetsIdentical(const model::Dataset& a, const model::Dataset& b) {
  ASSERT_EQ(a.UserCount(), b.UserCount());
  for (model::UserId id = 0; id < a.UserCount(); ++id) {
    EXPECT_EQ(a.UserName(id), b.UserName(id));
  }
  ASSERT_EQ(a.TraceCount(), b.TraceCount());
  for (std::size_t t = 0; t < a.TraceCount(); ++t) {
    const model::Trace& ta = a.traces()[t];
    const model::Trace& tb = b.traces()[t];
    ASSERT_EQ(ta.user(), tb.user()) << "trace " << t;
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].time, tb[i].time) << "trace " << t << " event " << i;
      // Bitwise: any divergence between serial and parallel execution
      // (different RNG stream, different accumulation order) must surface.
      EXPECT_EQ(ta[i].position.lat, tb[i].position.lat)
          << "trace " << t << " event " << i;
      EXPECT_EQ(ta[i].position.lng, tb[i].position.lng)
          << "trace " << t << " event " << i;
    }
  }
}

TEST(ParallelDeterminism, AnonymizerPipelineIsWorkerCountInvariant) {
  const model::Dataset input = TestWorldDataset();
  const core::Anonymizer anonymizer;

  core::PipelineReport serial_report;
  util::Rng serial_rng(kSeed);
  model::Dataset serial;
  {
    const util::ScopedParallelism one(1);
    serial = anonymizer.ApplyWithReport(input, serial_rng, serial_report);
  }

  core::PipelineReport parallel_report;
  util::Rng parallel_rng(kSeed);
  model::Dataset parallel;
  {
    const util::ScopedParallelism eight(8);
    parallel = anonymizer.ApplyWithReport(input, parallel_rng, parallel_report);
  }

  ExpectDatasetsIdentical(serial, parallel);
  // The caller's RNG must advance identically too (later pipeline stages
  // depend on it).
  EXPECT_EQ(serial_rng.NextU64(), parallel_rng.NextU64());
  EXPECT_EQ(serial_report.ToString(), parallel_report.ToString());
  EXPECT_EQ(serial_report.mixzone.encounters, parallel_report.mixzone.encounters);
  EXPECT_EQ(serial_report.mixzone.swaps_applied,
            parallel_report.mixzone.swaps_applied);
}

TEST(ParallelDeterminism, StochasticPerTraceMechanismIsWorkerCountInvariant) {
  const model::Dataset input = TestWorldDataset();
  const mech::GeoIndistinguishability mechanism;  // draws noise per event

  util::Rng serial_rng(kSeed);
  model::Dataset serial;
  {
    const util::ScopedParallelism one(1);
    serial = mechanism.Apply(input, serial_rng);
  }
  util::Rng parallel_rng(kSeed);
  model::Dataset parallel;
  {
    const util::ScopedParallelism eight(8);
    parallel = mechanism.Apply(input, parallel_rng);
  }
  ExpectDatasetsIdentical(serial, parallel);
  EXPECT_EQ(serial_rng.NextU64(), parallel_rng.NextU64());
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreIdentical) {
  const model::Dataset input = TestWorldDataset();
  const core::Anonymizer anonymizer;
  const util::ScopedParallelism eight(8);
  util::Rng rng_a(kSeed);
  util::Rng rng_b(kSeed);
  ExpectDatasetsIdentical(anonymizer.Apply(input, rng_a),
                          anonymizer.Apply(input, rng_b));
}

TEST(ParallelDeterminism, AttackResultsAreWorkerCountInvariant) {
  const model::Dataset input = TestWorldDataset();
  const geo::LocalProjection projection = attacks::DatasetProjection(input);
  const attacks::ReidentificationAttack attack;
  const attacks::PoiExtractor extractor;

  std::vector<attacks::LinkResult> serial_links, parallel_links;
  std::vector<attacks::ExtractedPoi> serial_pois, parallel_pois;
  {
    const util::ScopedParallelism one(1);
    const auto profiles = attack.BuildProfiles(input, projection);
    serial_links = attack.Attack(profiles, input, projection);
    serial_pois = extractor.Extract(input, projection);
  }
  {
    const util::ScopedParallelism eight(8);
    const auto profiles = attack.BuildProfiles(input, projection);
    parallel_links = attack.Attack(profiles, input, projection);
    parallel_pois = extractor.Extract(input, projection);
  }

  ASSERT_EQ(serial_links.size(), parallel_links.size());
  for (std::size_t i = 0; i < serial_links.size(); ++i) {
    EXPECT_EQ(serial_links[i].true_user, parallel_links[i].true_user);
    EXPECT_EQ(serial_links[i].predicted_user, parallel_links[i].predicted_user);
    EXPECT_EQ(serial_links[i].linkable, parallel_links[i].linkable);
    EXPECT_EQ(serial_links[i].distance, parallel_links[i].distance);
  }
  ASSERT_EQ(serial_pois.size(), parallel_pois.size());
  for (std::size_t i = 0; i < serial_pois.size(); ++i) {
    EXPECT_EQ(serial_pois[i].user, parallel_pois[i].user);
    EXPECT_EQ(serial_pois[i].centroid.x, parallel_pois[i].centroid.x);
    EXPECT_EQ(serial_pois[i].centroid.y, parallel_pois[i].centroid.y);
    EXPECT_EQ(serial_pois[i].visits, parallel_pois[i].visits);
    EXPECT_EQ(serial_pois[i].total_dwell_s, parallel_pois[i].total_dwell_s);
  }
}

TEST(ParallelDeterminism, ParallelForCoversEveryIndexOnce) {
  const util::ScopedParallelism eight(8);
  std::vector<std::atomic<int>> hits(10000);
  util::ParallelForEach(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelDeterminism, ParallelForPropagatesExceptions) {
  const util::ScopedParallelism eight(8);
  EXPECT_THROW(
      util::ParallelForEach(1000,
                            [](std::size_t i) {
                              if (i == 517) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

}  // namespace
}  // namespace mobipriv
