// The parallel batch engine's core contract: output is byte-identical
// whatever the worker count. Every stochastic stage derives per-trace RNG
// streams from one master draw, so a serial run (parallelism 1) and a
// multi-threaded run (parallelism 8) of the same seed must produce exactly
// the same datasets, reports and attack results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "core/anonymizer.h"
#include "mechanisms/geo_indistinguishability.h"
#include "model/geolife.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"
#include "util/thread_pool.h"

namespace mobipriv {
namespace {

constexpr std::uint64_t kSeed = 20150629;

model::Dataset TestWorldDataset() {
  synth::PopulationConfig config;
  config.agents = 12;
  config.days = 2;
  config.seed = 77;
  return synth::SyntheticWorld(config).dataset();
}

/// Exact (bitwise) dataset equality: same users, same traces in the same
/// order, same events with identical coordinates and timestamps.
void ExpectDatasetsIdentical(const model::Dataset& a, const model::Dataset& b) {
  ASSERT_EQ(a.UserCount(), b.UserCount());
  for (model::UserId id = 0; id < a.UserCount(); ++id) {
    EXPECT_EQ(a.UserName(id), b.UserName(id));
  }
  ASSERT_EQ(a.TraceCount(), b.TraceCount());
  for (std::size_t t = 0; t < a.TraceCount(); ++t) {
    const model::Trace& ta = a.traces()[t];
    const model::Trace& tb = b.traces()[t];
    ASSERT_EQ(ta.user(), tb.user()) << "trace " << t;
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].time, tb[i].time) << "trace " << t << " event " << i;
      // Bitwise: any divergence between serial and parallel execution
      // (different RNG stream, different accumulation order) must surface.
      EXPECT_EQ(ta[i].position.lat, tb[i].position.lat)
          << "trace " << t << " event " << i;
      EXPECT_EQ(ta[i].position.lng, tb[i].position.lng)
          << "trace " << t << " event " << i;
    }
  }
}

TEST(ParallelDeterminism, AnonymizerPipelineIsWorkerCountInvariant) {
  const model::Dataset input = TestWorldDataset();
  const core::Anonymizer anonymizer;

  core::PipelineReport serial_report;
  util::Rng serial_rng(kSeed);
  model::Dataset serial;
  {
    const util::ScopedParallelism one(1);
    serial = anonymizer.ApplyWithReport(input, serial_rng, serial_report);
  }

  core::PipelineReport parallel_report;
  util::Rng parallel_rng(kSeed);
  model::Dataset parallel;
  {
    const util::ScopedParallelism eight(8);
    parallel = anonymizer.ApplyWithReport(input, parallel_rng, parallel_report);
  }

  ExpectDatasetsIdentical(serial, parallel);
  // The caller's RNG must advance identically too (later pipeline stages
  // depend on it).
  EXPECT_EQ(serial_rng.NextU64(), parallel_rng.NextU64());
  EXPECT_EQ(serial_report.ToString(), parallel_report.ToString());
  EXPECT_EQ(serial_report.mixzone.encounters, parallel_report.mixzone.encounters);
  EXPECT_EQ(serial_report.mixzone.swaps_applied,
            parallel_report.mixzone.swaps_applied);
}

TEST(ParallelDeterminism, StochasticPerTraceMechanismIsWorkerCountInvariant) {
  const model::Dataset input = TestWorldDataset();
  const mech::GeoIndistinguishability mechanism;  // draws noise per event

  util::Rng serial_rng(kSeed);
  model::Dataset serial;
  {
    const util::ScopedParallelism one(1);
    serial = mechanism.Apply(input, serial_rng);
  }
  util::Rng parallel_rng(kSeed);
  model::Dataset parallel;
  {
    const util::ScopedParallelism eight(8);
    parallel = mechanism.Apply(input, parallel_rng);
  }
  ExpectDatasetsIdentical(serial, parallel);
  EXPECT_EQ(serial_rng.NextU64(), parallel_rng.NextU64());
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreIdentical) {
  const model::Dataset input = TestWorldDataset();
  const core::Anonymizer anonymizer;
  const util::ScopedParallelism eight(8);
  util::Rng rng_a(kSeed);
  util::Rng rng_b(kSeed);
  ExpectDatasetsIdentical(anonymizer.Apply(input, rng_a),
                          anonymizer.Apply(input, rng_b));
}

TEST(ParallelDeterminism, AttackResultsAreWorkerCountInvariant) {
  const model::Dataset input = TestWorldDataset();
  const geo::LocalProjection projection = attacks::DatasetProjection(input);
  const attacks::ReidentificationAttack attack;
  const attacks::PoiExtractor extractor;

  std::vector<attacks::LinkResult> serial_links, parallel_links;
  std::vector<attacks::ExtractedPoi> serial_pois, parallel_pois;
  {
    const util::ScopedParallelism one(1);
    const auto profiles = attack.BuildProfiles(input, projection);
    serial_links = attack.Attack(profiles, input, projection);
    serial_pois = extractor.Extract(input, projection);
  }
  {
    const util::ScopedParallelism eight(8);
    const auto profiles = attack.BuildProfiles(input, projection);
    parallel_links = attack.Attack(profiles, input, projection);
    parallel_pois = extractor.Extract(input, projection);
  }

  ASSERT_EQ(serial_links.size(), parallel_links.size());
  for (std::size_t i = 0; i < serial_links.size(); ++i) {
    EXPECT_EQ(serial_links[i].true_user, parallel_links[i].true_user);
    EXPECT_EQ(serial_links[i].predicted_user, parallel_links[i].predicted_user);
    EXPECT_EQ(serial_links[i].linkable, parallel_links[i].linkable);
    EXPECT_EQ(serial_links[i].distance, parallel_links[i].distance);
  }
  ASSERT_EQ(serial_pois.size(), parallel_pois.size());
  for (std::size_t i = 0; i < serial_pois.size(); ++i) {
    EXPECT_EQ(serial_pois[i].user, parallel_pois[i].user);
    EXPECT_EQ(serial_pois[i].centroid.x, parallel_pois[i].centroid.x);
    EXPECT_EQ(serial_pois[i].centroid.y, parallel_pois[i].centroid.y);
    EXPECT_EQ(serial_pois[i].visits, parallel_pois[i].visits);
    EXPECT_EQ(serial_pois[i].total_dwell_s, parallel_pois[i].total_dwell_s);
  }
}

// ---- Ingestion determinism -------------------------------------------------
// Same bytes in -> byte-identical Dataset out, whatever the worker count,
// chunk count or shard count. The CSV fixture deliberately interleaves
// users, mixes line terminators and varies the trailing newline.

/// A CSV whose rows interleave users and whose size forces multi-chunk
/// parses even at tiny chunk bounds.
std::string FixtureCsv(bool crlf, bool trailing_newline) {
  std::ostringstream os;
  os << "user,lat,lng,timestamp" << (crlf ? "\r\n" : "\n");
  const char* eol = crlf ? "\r\n" : "\n";
  for (int i = 0; i < 500; ++i) {
    const int user = i % 7;
    os << "u" << user << "," << (45.0 + 0.001 * (i % 100)) << ","
       << (4.0 + 0.0007 * (i % 130)) << "," << (1000000 + i * 13) << eol;
    if (i % 41 == 0) os << eol;  // occasional blank line
  }
  std::string text = os.str();
  if (!trailing_newline) {
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
  }
  return text;
}

TEST(IngestionDeterminism, CsvIsWorkerAndChunkCountInvariant) {
  for (const bool crlf : {false, true}) {
    for (const bool trailing : {true, false}) {
      const std::string text = FixtureCsv(crlf, trailing);
      model::Dataset reference;
      {
        const util::ScopedParallelism one(1);
        reference = model::ReadCsvText(text);
      }
      ASSERT_GT(reference.EventCount(), 0u);
      {
        const util::ScopedParallelism four(4);
        ExpectDatasetsIdentical(reference, model::ReadCsvText(text));
        // Tiny chunk bounds force many chunks (and chunk boundaries that
        // would split rows, which must slide to the newline).
        for (const std::size_t max_chunks : {1u, 3u, 8u, 64u}) {
          ExpectDatasetsIdentical(
              reference,
              model::ReadCsvTextChunked(text, max_chunks, /*min=*/64));
        }
      }
      // The streaming single-pass reader must agree with the chunked one.
      std::istringstream in(text);
      ExpectDatasetsIdentical(reference, model::ReadCsvStreaming(in));
    }
  }
}

TEST(IngestionDeterminism, ShardCountNeverChangesTheDataset) {
  const std::string text = FixtureCsv(false, true);
  const model::Dataset dataset = model::ReadCsvText(text);
  for (const std::size_t shards : {1u, 3u, 8u}) {
    for (const std::size_t threads : {1u, 4u}) {
      const util::ScopedParallelism scope(threads);
      const auto sharded = model::ShardedDataset::Partition(dataset, shards);
      ExpectDatasetsIdentical(dataset, sharded.Merge());
    }
  }
}

TEST(IngestionDeterminism, MalformedRowReportsSameRowAtAnyChunking) {
  // Break one row deep in the fixture; every chunking must throw the same
  // row-numbered error the serial reader produces.
  std::string text = FixtureCsv(false, true);
  const std::string needle = "u3,";
  const std::size_t hit = text.rfind(needle);
  ASSERT_NE(hit, std::string::npos);
  text.replace(hit, needle.size(), "u3;");  // now a 3-field row
  std::string serial_error;
  try {
    std::istringstream in(text);
    (void)model::ReadCsvStreaming(in);
    FAIL() << "expected IoError";
  } catch (const model::IoError& e) {
    serial_error = e.what();
  }
  EXPECT_NE(serial_error.find("row "), std::string::npos);
  for (const std::size_t max_chunks : {1u, 5u, 32u}) {
    try {
      (void)model::ReadCsvTextChunked(text, max_chunks, /*min=*/64);
      FAIL() << "expected IoError at max_chunks=" << max_chunks;
    } catch (const model::IoError& e) {
      EXPECT_EQ(serial_error, e.what()) << "max_chunks=" << max_chunks;
    }
  }
}

TEST(IngestionDeterminism, RowSplitAcrossChunkBoundaryCases) {
  // Adversarial small inputs parsed at 1-byte chunk granularity: every
  // possible boundary is exercised, including CRLF pairs and a final row
  // with no terminator.
  const std::string cases[] = {
      "a,45.0,4.0,1\nb,45.0,4.0,2\n",
      "a,45.0,4.0,1\r\nb,45.0,4.0,2\r\n",
      "a,45.0,4.0,1\nb,45.0,4.0,2",
      "user,lat,lng,timestamp\na,45.0,4.0,1\n\na,45.0,4.0,2\n",
      "\n\nuser,lat,lng,timestamp\r\na,45.0,4.0,1\r\n",
  };
  for (const std::string& text : cases) {
    std::istringstream in(text);
    const model::Dataset reference = model::ReadCsvStreaming(in);
    for (const std::size_t max_chunks : {1u, 2u, 1000u}) {
      ExpectDatasetsIdentical(
          reference, model::ReadCsvTextChunked(text, max_chunks, /*min=*/1));
    }
  }
}

TEST(IngestionDeterminism, GeolifeLoadIsWorkerCountInvariant) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("mobipriv_determinism_geolife_" + std::to_string(::getpid()));
  fs::remove_all(root);
  const char* header =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n0\n";
  for (int user = 0; user < 5; ++user) {
    for (int file = 0; file < 3; ++file) {
      const fs::path dir =
          root / ("00" + std::to_string(user)) / "Trajectory";
      fs::create_directories(dir);
      std::ofstream out(dir / ("2009042" + std::to_string(file) + ".plt"));
      out << header;
      for (int row = 0; row < 40; ++row) {
        out << (39.9 + 0.001 * row) << "," << (116.3 + 0.002 * row)
            << ",0,492,39925.44,2009-04-2" << file << ",10:34:"
            << (10 + row) % 60 << "\n";
      }
    }
  }
  model::Dataset serial;
  {
    const util::ScopedParallelism one(1);
    serial = model::LoadGeolife(root.string());
  }
  ASSERT_EQ(serial.TraceCount(), 15u);
  {
    const util::ScopedParallelism four(4);
    ExpectDatasetsIdentical(serial, model::LoadGeolife(root.string()));
  }
  fs::remove_all(root);
}

TEST(ParallelDeterminism, ParallelForCoversEveryIndexOnce) {
  const util::ScopedParallelism eight(8);
  std::vector<std::atomic<int>> hits(10000);
  util::ParallelForEach(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelDeterminism, ParallelForPropagatesExceptions) {
  const util::ScopedParallelism eight(8);
  EXPECT_THROW(
      util::ParallelForEach(1000,
                            [](std::size_t i) {
                              if (i == 517) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

}  // namespace
}  // namespace mobipriv
