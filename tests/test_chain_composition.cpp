// Differential tests for mechanism composition ("a|b|c"):
//   * a monolithic ChainMechanism is bitwise identical to manually
//     applying its stages in sequence with ONE rng — on the AoS path
//     (Apply) and the SoA path (ApplyToStore), at 1 and 4 workers;
//   * the scenario engine compiles chains into per-PREFIX stage nodes:
//     rows sharing a prefix reuse its nodes (stats().stage_reuses), each
//     shared stage runs exactly once, and the report is byte-identical
//     across thread counts and cache states;
//   * engine stage bytes follow the documented per-prefix rng discipline
//     (verified against the `.mpc` cache entry by recomputing by hand);
//   * chain names never alias single-mechanism names ("ours[...]" is not
//     a chain), and differently-written chains that canonicalize to the
//     same name share one grid row.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/output_cache.h"
#include "core/scenario.h"
#include "mechanisms/chain.h"
#include "mechanisms/registry.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "synth/population.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 8;
    config.days = 1;
    config.seed = 99;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

std::uint64_t Bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Bitwise equality of two dataset views: same trace order, same user
/// names, same event bit patterns (stricter than value equality — NaN and
/// signed-zero differences fail too).
void ExpectBitIdentical(const model::DatasetView& a,
                        const model::DatasetView& b,
                        const std::string& context) {
  ASSERT_EQ(a.TraceCount(), b.TraceCount()) << context;
  for (std::size_t t = 0; t < a.TraceCount(); ++t) {
    const model::TraceView& ta = a.trace(t);
    const model::TraceView& tb = b.trace(t);
    ASSERT_EQ(ta.size(), tb.size()) << context << " trace " << t;
    ASSERT_EQ(a.UserName(ta.user()), b.UserName(tb.user()))
        << context << " trace " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(Bits(ta.lat(i)), Bits(tb.lat(i)))
          << context << " trace " << t << " event " << i;
      ASSERT_EQ(Bits(ta.lng(i)), Bits(tb.lng(i)))
          << context << " trace " << t << " event " << i;
      ASSERT_EQ(ta.time(i), tb.time(i))
          << context << " trace " << t << " event " << i;
    }
  }
}

/// Manual sequential staging with one rng — the reference ChainMechanism
/// must reproduce: stage k starts drawing where stage k-1 stopped.
model::Dataset ManualApply(const std::vector<std::string>& stages,
                           const model::Dataset& input, util::Rng& rng) {
  model::Dataset current = input;
  for (const std::string& text : stages) {
    current = mech::CreateMechanism(text)->Apply(current, rng);
  }
  return current;
}

model::EventStore ManualApplyToStore(const std::vector<std::string>& stages,
                                     const model::DatasetView& input,
                                     util::Rng& rng) {
  model::EventStore store;
  model::DatasetView view = input;
  for (const std::string& text : stages) {
    store = mech::CreateMechanism(text)->ApplyToStore(view, rng);
    view = store.View();
  }
  return store;
}

std::string JoinStages(const std::vector<std::string>& stages) {
  std::string text;
  for (const std::string& stage : stages) {
    if (!text.empty()) text += "|";
    text += stage;
  }
  return text;
}

void ExpectChainMatchesManual(const std::vector<std::string>& stages,
                              std::uint64_t seed) {
  const std::string text = JoinStages(stages);
  const auto chain = mech::CreateMechanism(text);

  // AoS path.
  util::Rng chain_rng(seed);
  util::Rng manual_rng(seed);
  const model::Dataset via_chain = chain->Apply(World(), chain_rng);
  const model::Dataset via_manual = ManualApply(stages, World(), manual_rng);
  ExpectBitIdentical(model::DatasetView::Of(via_chain),
                     model::DatasetView::Of(via_manual), text + " [Apply]");

  // SoA path (and cross-path: the store must be FromDataset(Apply(...))).
  util::Rng store_rng(seed);
  util::Rng store_manual_rng(seed);
  const model::DatasetView input = model::DatasetView::Of(World());
  const model::EventStore store_chain = chain->ApplyToStore(input, store_rng);
  const model::EventStore store_manual =
      ManualApplyToStore(stages, input, store_manual_rng);
  ExpectBitIdentical(store_chain.View(), store_manual.View(),
                     text + " [ApplyToStore]");
  ExpectBitIdentical(store_chain.View(), model::DatasetView::Of(via_chain),
                     text + " [store vs AoS]");
}

TEST(ChainComposition, PairsMatchManualStagingAtBothThreadLevels) {
  const std::vector<std::string> pool = {"geo_ind[eps=0.05]",
                                         "downsampling[dt=120]", "cloaking",
                                         "mixzone[r=100m]"};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const util::ScopedParallelism scope(threads);
    for (const std::string& a : pool) {
      for (const std::string& b : pool) {
        ExpectChainMatchesManual({a, b}, 17);
      }
    }
  }
}

TEST(ChainComposition, EveryRegistryBaseChainsAfterAStochasticStage) {
  // Every registered base must compose: bare base as the second stage of a
  // chain behind a stochastic first stage (so the rng handoff position is
  // exercised for every mechanism).
  for (const std::string& base : mech::RegisteredMechanismBases()) {
    ExpectChainMatchesManual({"gaussian", base}, 23);
  }
}

TEST(ChainComposition, TriplesMatchManualStaging) {
  const util::ScopedParallelism scope(4);
  ExpectChainMatchesManual(
      {"geo_ind[eps=0.05]", "downsampling[dt=120]", "mixzone[r=100m]"}, 31);
  ExpectChainMatchesManual({"cloaking", "gaussian", "downsampling[dt=120]"},
                           31);
  ExpectChainMatchesManual(
      {"mixzone[r=100m]", "geo_ind[eps=0.05]", "cloaking"}, 31);
}

TEST(ChainComposition, ChainMechanismValidatesItsStages) {
  using StageList = std::vector<std::unique_ptr<mech::Mechanism>>;
  EXPECT_THROW(mech::ChainMechanism{StageList{}}, std::invalid_argument);
  EXPECT_THROW((void)mech::CreateMechanism("geo_ind[eps=0.05]|warp_drive"),
               util::SpecError);
  // Single-stage chain text is the mechanism itself, no wrapper name.
  EXPECT_EQ(mech::CreateChain("cloaking")->Name(),
            mech::CreateMechanism("cloaking")->Name());
}

// ---- Engine compilation: shared prefixes become shared nodes. -----------

core::ScenarioSpec SharedPrefixSpec() {
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  // Four rows, one shared 2-stage prefix: 12 stage references compile to
  // 2 shared + 4 terminal = 6 nodes.
  spec.mechanisms = {
      "geo_ind[eps=0.05]|downsampling[dt=120]|mixzone[r=100m]",
      "geo_ind[eps=0.05]|downsampling[dt=120]|mixzone[r=200m]",
      "geo_ind[eps=0.05]|downsampling[dt=120]|cloaking",
      "geo_ind[eps=0.05]|downsampling[dt=120]|gaussian",
  };
  spec.evaluators = {"spatial_distortion", "certification"};
  spec.seeds = {1};
  return spec;
}

TEST(ChainComposition, EngineSharesPrefixNodesAcrossGridRows) {
  core::ScenarioEngine engine(SharedPrefixSpec());
  const core::Report report = engine.Run();

  // Each shared stage compiled (and therefore ran) exactly once.
  EXPECT_EQ(engine.stats().mechanism_nodes, 6u);
  EXPECT_EQ(engine.stats().stage_reuses, 6u);
  EXPECT_EQ(engine.stats().evaluator_nodes, 8u);
  EXPECT_TRUE(report.AllOk());

  // Rows are named by the canonical chain name, and the privacy column
  // (certification) is present for every row.
  std::size_t cert_rows = 0;
  for (const core::ReportRow& row : report.rows()) {
    EXPECT_NE(row.mechanism.find('|'), std::string::npos);
    if (row.metric == "cert_certified") ++cert_rows;
  }
  EXPECT_EQ(cert_rows, 4u);
}

TEST(ChainComposition, EngineReportByteIdenticalAcrossThreadsAndCache) {
  const fs::path dir = fs::temp_directory_path() / "mobipriv_chain_cache";
  fs::remove_all(dir);
  fs::create_directories(dir);

  core::ScenarioSpec base = SharedPrefixSpec();
  base.threads = 1;
  const std::string reference = core::RunScenario(base).ToCsv();

  base.threads = 4;
  EXPECT_EQ(core::RunScenario(base).ToCsv(), reference);

  // Cold cache: 6 stage nodes spill 6 entries; report unchanged.
  core::ScenarioSpec cached = SharedPrefixSpec();
  cached.mechanism_cache_dir = (dir / "cache").string();
  core::ScenarioEngine cold(cached);
  EXPECT_EQ(cold.Run().ToCsv(), reference);
  EXPECT_EQ(cold.stats().cache_misses, 6u);
  EXPECT_EQ(cold.stats().cache_hits, 0u);

  // Warm cache at a different thread count: all hits, report unchanged.
  cached = SharedPrefixSpec();
  cached.mechanism_cache_dir = (dir / "cache").string();
  cached.threads = 4;
  core::ScenarioEngine warm(cached);
  EXPECT_EQ(warm.Run().ToCsv(), reference);
  EXPECT_EQ(warm.stats().cache_hits, 6u);
  EXPECT_EQ(warm.stats().cache_misses, 0u);
  fs::remove_all(dir);
}

TEST(ChainComposition, EngineStageBytesFollowThePerPrefixRngDiscipline) {
  // Recompute the 3-stage chain by hand under the engine's documented
  // discipline — stage k's rng seeded from (cell seed, FNV of the PREFIX
  // canonical name) — and check the engine's terminal output (read back
  // from its cache entry) matches bit for bit.
  const fs::path dir = fs::temp_directory_path() / "mobipriv_chain_rng";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::uint64_t seed = 7;
  const std::vector<std::string> stages = {
      "geo_ind[eps=0.05]", "downsampling[dt=120]", "mixzone[r=100m]"};

  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  spec.mechanisms = {JoinStages(stages)};
  spec.evaluators = {"spatial_distortion"};
  spec.seeds = {seed};
  spec.mechanism_cache_dir = (dir / "cache").string();
  core::ScenarioEngine engine(spec);
  (void)engine.Run();
  EXPECT_EQ(engine.stats().cache_misses, 3u);

  const model::DatasetView source = model::DatasetView::Of(World());
  const std::uint64_t fingerprint = core::OutputCache::FingerprintView(source);
  core::OutputCache cache((dir / "cache").string());

  model::EventStore manual;
  model::DatasetView input = source;
  std::string prefix;
  for (const std::string& text : stages) {
    if (!prefix.empty()) prefix += "|";
    prefix += mech::CreateMechanism(text)->Name();
    util::Rng rng(util::DeriveStreamSeed(
        seed, model::Fnv1a64(prefix.data(), prefix.size()), 0));
    manual = mech::CreateMechanism(text)->ApplyToStore(input, rng);
    input = manual.View();

    model::EventStore cached_stage;
    ASSERT_TRUE(cache.TryLoad(
        core::OutputCache::KeyText(prefix, fingerprint, seed), cached_stage))
        << prefix;
    ExpectBitIdentical(cached_stage.View(), manual.View(), prefix);
  }

  // ... and this intentionally differs from the monolithic one-rng chain.
  util::Rng mono_rng(util::DeriveStreamSeed(seed, 0, 0));
  const model::EventStore mono =
      mech::CreateMechanism(JoinStages(stages))->ApplyToStore(source, mono_rng);
  const bool identical =
      mono.EventCount() == manual.EventCount() &&
      std::memcmp(mono.lat().data(), manual.lat().data(),
                  mono.EventCount() * sizeof(double)) == 0;
  EXPECT_FALSE(identical)
      << "engine per-prefix streams unexpectedly matched the monolithic "
         "single-rng chain";
  fs::remove_all(dir);
}

// ---- Naming: chains never alias single mechanisms, and canonical-equal
// chain texts share one row. ----------------------------------------------

TEST(ChainComposition, ChainNamesNeverAliasSingleMechanismNames) {
  // "ours[speed+mix]" is ONE mechanism (internal pipeline); its name has
  // no top-level '|', so it can never collide with a chain's cache keys.
  const std::string ours = mech::CreateMechanism("ours[speed+mix]")->Name();
  const std::string chain =
      mech::CreateMechanism("speed_smoothing|mixzone")->Name();
  EXPECT_EQ(ours.find('|'), std::string::npos);
  EXPECT_NE(chain.find('|'), std::string::npos);
  EXPECT_NE(ours, chain);
  EXPECT_NE(core::OutputCache::KeyText(ours, 1, 1),
            core::OutputCache::KeyText(chain, 1, 1));

  // Chain names round-trip through the registry like any other name.
  EXPECT_EQ(mech::CreateMechanism(chain)->Name(), chain);
}

TEST(ChainComposition, CanonicallyEqualChainTextsShareOneRow) {
  // "cloaking" canonicalizes to "cloaking[cell=250m]": both texts name the
  // same chain, so the engine compiles one row (and two stage nodes).
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  spec.mechanisms = {"cloaking|identity", "cloaking[cell=250m]|identity"};
  spec.evaluators = {"spatial_distortion"};
  spec.seeds = {5};
  core::ScenarioEngine engine(spec);
  const core::Report report = engine.Run();
  EXPECT_EQ(engine.stats().mechanism_nodes, 2u);
  EXPECT_EQ(engine.stats().stage_reuses, 0u);  // dedup is not a reuse
  for (const core::ReportRow& row : report.rows()) {
    EXPECT_EQ(row.mechanism, "cloaking[cell=250m]|identity");
  }
}

}  // namespace
}  // namespace mobipriv
