#include "privacy/certification.h"

#include <gtest/gtest.h>

#include "core/anonymizer.h"
#include "mechanisms/speed_smoothing.h"
#include "synth/population.h"

namespace mobipriv::privacy {
namespace {

model::Dataset RawWorld() {
  synth::PopulationConfig config;
  config.agents = 5;
  config.days = 1;
  config.seed = 321;
  const synth::SyntheticWorld world(config);
  return world.dataset().Clone();
}

TEST(Certification, RejectsRawData) {
  const auto report = CertifyConstantSpeed(RawWorld());
  EXPECT_FALSE(report.Certified());
  EXPECT_GT(report.violations.size(), 0u);
  // Raw data violates in multiple ways: non-uniform spacing AND residual
  // stays.
  bool has_spacing = false;
  bool has_stay = false;
  for (const auto& v : report.violations) {
    has_spacing |=
        v.kind == CertificationViolation::Kind::kNonUniformSpacing;
    has_stay |= v.kind == CertificationViolation::Kind::kResidualStay;
  }
  EXPECT_TRUE(has_spacing);
  EXPECT_TRUE(has_stay);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(Certification, CertifiesStageOneOutput) {
  const mech::SpeedSmoothing mechanism;
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(RawWorld(), rng);
  const auto report = CertifyConstantSpeed(published);
  EXPECT_TRUE(report.Certified()) << report.ToString();
  EXPECT_GT(report.traces_checked, 0u);
}

TEST(Certification, CertifiesFullPipelineOutput) {
  const core::Anonymizer anonymizer;
  util::Rng rng(2);
  const model::Dataset published = anonymizer.Apply(RawWorld(), rng);
  CertificationConfig config;
  // Mix-zone suppression cuts traces; the stitched pieces keep uniform
  // spacing per segment but a swapped trace may join two speeds, so allow
  // interval deviation at the stitch point via screening-only checks:
  // verify there is at least no residual stay and time ordering holds.
  config.max_spacing_deviation = 1e9;
  config.max_interval_deviation_s = 1e18;
  const auto report = CertifyConstantSpeed(published, config);
  EXPECT_TRUE(report.Certified()) << report.ToString();
}

TEST(Certification, FlagsUnorderedTimestamps) {
  model::Dataset dataset;
  dataset.AddTraceForUser(
      "u", {{{45.0, 4.0}, 100}, {{45.01, 4.0}, 50}, {{45.02, 4.0}, 200},
            {{45.03, 4.0}, 300}});
  const auto report = CertifyConstantSpeed(dataset);
  ASSERT_FALSE(report.Certified());
  EXPECT_EQ(report.violations.front().kind,
            CertificationViolation::Kind::kUnorderedTimestamps);
}

TEST(Certification, ExemptsTinyTraces) {
  model::Dataset dataset;
  dataset.AddTraceForUser("u", {{{45.0, 4.0}, 0}, {{45.5, 4.0}, 60}});
  const auto report = CertifyConstantSpeed(dataset);
  EXPECT_TRUE(report.Certified());
  EXPECT_EQ(report.traces_exempt, 1u);
  EXPECT_EQ(report.traces_checked, 0u);
}

TEST(Certification, IntervalToleranceRespected) {
  // Uniform spacing, one interval off by 5 s: rejected at 2 s tolerance,
  // accepted at 10 s.
  model::Dataset dataset;
  std::vector<model::Event> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back({{45.0 + 0.001 * i, 4.0},
                      static_cast<util::Timestamp>(i * 100)});
  }
  events.back().time += 5;
  dataset.AddTraceForUser("u", events);
  EXPECT_FALSE(CertifyConstantSpeed(dataset).Certified());
  CertificationConfig relaxed;
  relaxed.max_interval_deviation_s = 10.0;
  EXPECT_TRUE(CertifyConstantSpeed(dataset, relaxed).Certified());
}

}  // namespace
}  // namespace mobipriv::privacy
