#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace mobipriv::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.Uniform(2.0, 2.0), 2.0);
}

TEST(Rng, NextBoundedCoversRangeUniformly) {
  Rng rng(99);
  std::array<int, 10> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (const int c : counts) {
    // Each bucket expects 10000; allow 5 sigma (~±475).
    EXPECT_NEAR(c, kDraws / 10, 500);
  }
}

TEST(Rng, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.UniformInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(19);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += rng.Gaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, LaplaceMomentsAndSymmetry) {
  Rng rng(29);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_abs = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Laplace(0.0, 3.0);
    sum += x;
    sum_abs += std::abs(x);
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);       // mean = mu
  EXPECT_NEAR(sum_abs / kDraws, 3.0, 0.05);   // E|X - mu| = b
}

TEST(Rng, AngleRange) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.Angle();
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 2.0 * 3.14159265358979 + 1e-9);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()) &&
               values.size() > 10);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(Rng, ShuffleSmallSpansAreSafe) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(empty);
  std::vector<int> one{42};
  rng.Shuffle(one);
  EXPECT_EQ(one.front(), 42);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(43);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.01);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(47);
  const std::vector<double> weights{0.0, 0.0};
  std::array<int, 2> counts{};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_GT(counts[0], 4000);
  EXPECT_GT(counts[1], 4000);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng parent(51);
  Rng child = parent.Split();
  // Parent and child should not produce the same next values.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SeedSequence, Deterministic) {
  SeedSequence a(5);
  SeedSequence b(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SeedSequence, ProducesDistinctSeeds) {
  SeedSequence seq(5);
  const auto s1 = seq.Next();
  const auto s2 = seq.Next();
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace mobipriv::util
