// Chunked line-reader properties: chunks tile the input exactly, cut only
// at line breaks, carry correct global line numbers, and ForEachLine agrees
// with the streaming reader's record rules (CRLF, lone CR, missing final
// newline).
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "util/chunked_reader.h"

namespace mobipriv::util {
namespace {

std::vector<std::pair<std::string, std::size_t>> CollectLines(
    std::string_view text, std::size_t first_line = 1) {
  std::vector<std::pair<std::string, std::size_t>> lines;
  ForEachLine(text, first_line, [&](std::string_view line, std::size_t n) {
    lines.emplace_back(std::string(line), n);
  });
  return lines;
}

TEST(ForEachLine, HandlesUnixCrlfAndLoneCr) {
  const auto lines = CollectLines("a\nb\r\nc\rd");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], (std::pair<std::string, std::size_t>{"a", 1}));
  EXPECT_EQ(lines[1], (std::pair<std::string, std::size_t>{"b", 2}));
  EXPECT_EQ(lines[2], (std::pair<std::string, std::size_t>{"c", 3}));
  EXPECT_EQ(lines[3], (std::pair<std::string, std::size_t>{"d", 4}));
}

TEST(ForEachLine, NoTrailingPhantomLine) {
  EXPECT_EQ(CollectLines("a\n").size(), 1u);
  EXPECT_EQ(CollectLines("a\r\n").size(), 1u);
  EXPECT_EQ(CollectLines("a").size(), 1u);
  EXPECT_EQ(CollectLines("").size(), 0u);
}

TEST(ForEachLine, EmptyLinesAreRecords) {
  const auto lines = CollectLines("\n\na\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].first, "");
  EXPECT_EQ(lines[1].first, "");
  EXPECT_EQ(lines[2].first, "a");
}

TEST(SplitLineChunks, TilesTheInputExactly) {
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    text += "line" + std::to_string(i) + "\n";
  }
  for (const std::size_t max_chunks : {1u, 2u, 7u, 64u}) {
    const auto chunks = SplitLineChunks(text, max_chunks, /*min=*/128);
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().begin, 0u);
    EXPECT_EQ(chunks.back().end, text.size());
    for (std::size_t c = 1; c < chunks.size(); ++c) {
      EXPECT_EQ(chunks[c].begin, chunks[c - 1].end);
      // Boundaries fall only right after a newline.
      EXPECT_EQ(text[chunks[c].begin - 1], '\n');
    }
    EXPECT_LE(chunks.size(), max_chunks + 1);
  }
}

TEST(SplitLineChunks, FirstLineNumbersAreGlobal) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "x\n";
  const auto chunks = SplitLineChunks(text, 8, /*min=*/16);
  ASSERT_GT(chunks.size(), 1u);
  for (const auto& chunk : chunks) {
    // first_line == 1 + newlines before begin.
    std::size_t newlines = 0;
    for (std::size_t i = 0; i < chunk.begin; ++i) {
      if (text[i] == '\n') ++newlines;
    }
    EXPECT_EQ(chunk.first_line, newlines + 1);
  }
  // Re-parsing chunk by chunk yields the same (line, number) sequence as
  // parsing the whole text at once — for ANY chunking.
  const auto whole = CollectLines(text);
  std::vector<std::pair<std::string, std::size_t>> stitched;
  for (const auto& chunk : chunks) {
    const auto part = CollectLines(
        std::string_view(text).substr(chunk.begin, chunk.end - chunk.begin),
        chunk.first_line);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  EXPECT_EQ(stitched, whole);
}

TEST(SplitLineChunks, RowLongerThanChunkTargetStaysWhole) {
  // A row far longer than the min chunk size must not split: the boundary
  // slides to the next newline.
  const std::string long_row(1000, 'x');
  const std::string text = "a\n" + long_row + "\nb\n";
  const auto chunks = SplitLineChunks(text, 16, /*min=*/4);
  const auto whole = CollectLines(text);
  std::vector<std::pair<std::string, std::size_t>> stitched;
  for (const auto& chunk : chunks) {
    const auto part = CollectLines(
        std::string_view(text).substr(chunk.begin, chunk.end - chunk.begin),
        chunk.first_line);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  EXPECT_EQ(stitched, whole);
}

TEST(SplitLineChunks, SingleChunkWhenTiny) {
  const auto chunks = SplitLineChunks("a\nb\n", 8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 4u);
  EXPECT_EQ(chunks[0].first_line, 1u);
}

TEST(SplitLineChunks, EmptyText) {
  EXPECT_TRUE(SplitLineChunks("", 8).empty());
}

TEST(ReadAll, ReadsWholeStream) {
  std::string big(300000, 'z');
  big += "\ntail";
  std::istringstream in(big);
  EXPECT_EQ(ReadAll(in), big);
}

}  // namespace
}  // namespace mobipriv::util
