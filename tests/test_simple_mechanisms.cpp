// Tests for the simple baselines: identity, cloaking, Gaussian noise,
// temporal downsampling.
#include <gtest/gtest.h>

#include <set>

#include "geo/projection.h"
#include "mechanisms/cloaking.h"
#include "mechanisms/downsampling.h"
#include "mechanisms/gaussian_noise.h"
#include "mechanisms/identity.h"
#include "util/statistics.h"

namespace mobipriv::mech {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

model::Dataset SampleDataset() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  std::vector<model::Event> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({projection.Unproject({i * 37.0, i * 11.0}),
                      static_cast<util::Timestamp>(i * 30)});
  }
  dataset.AddTraceForUser("u", std::move(events));
  return dataset;
}

TEST(Identity, ExactCopy) {
  const Identity mechanism;
  const model::Dataset input = SampleDataset();
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(input, rng);
  ASSERT_EQ(out.EventCount(), input.EventCount());
  EXPECT_EQ(out.UserCount(), input.UserCount());
  for (std::size_t i = 0; i < input.traces().front().size(); ++i) {
    EXPECT_EQ(out.traces().front()[i], input.traces().front()[i]);
  }
  EXPECT_EQ(mechanism.Name(), "identity");
}

TEST(Cloaking, SnapsToCellCenters) {
  CloakingConfig config;
  config.cell_size_m = 100.0;
  const Cloaking mechanism(config);
  const model::Dataset input = SampleDataset();
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(input, rng);
  ASSERT_EQ(out.EventCount(), input.EventCount());
  // Displacement never exceeds half the cell diagonal.
  const double max_displacement = 100.0 * std::sqrt(2.0) / 2.0 + 0.5;
  for (std::size_t i = 0; i < input.traces().front().size(); ++i) {
    const double d = geo::HaversineDistance(
        input.traces().front()[i].position, out.traces().front()[i].position);
    EXPECT_LE(d, max_displacement);
  }
}

TEST(Cloaking, CollapsesNearbyPoints) {
  CloakingConfig config;
  config.cell_size_m = 10000.0;  // cells far larger than the data extent
  const Cloaking mechanism(config);
  const model::Dataset input = SampleDataset();  // ~3.8 km extent
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(input, rng);
  // The whole trace collapses onto at most 4 cell centres (the extent can
  // straddle one cell boundary per axis).
  std::set<std::pair<double, double>> distinct;
  for (const auto& event : out.traces().front()) {
    distinct.insert({event.position.lat, event.position.lng});
  }
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_LT(distinct.size(), input.EventCount());
}

TEST(Cloaking, Deterministic) {
  const Cloaking mechanism;
  const model::Dataset input = SampleDataset();
  util::Rng rng_a(1);
  util::Rng rng_b(99);  // rng must not matter
  const auto a = mechanism.Apply(input, rng_a);
  const auto b = mechanism.Apply(input, rng_b);
  for (std::size_t i = 0; i < a.traces().front().size(); ++i) {
    EXPECT_EQ(a.traces().front()[i], b.traces().front()[i]);
  }
}

TEST(GaussianNoise, EmpiricalSigmaMatches) {
  GaussianNoiseConfig config;
  config.sigma_m = 50.0;
  const GaussianNoise mechanism(config);
  model::Dataset input;
  input.AddTraceForUser(
      "u", std::vector<model::Event>(5000, model::Event{kOrigin, 0}));
  util::Rng rng(3);
  const model::Dataset out = mechanism.Apply(input, rng);
  util::RunningStat dx;
  for (const auto& event : out.traces().front()) {
    dx.Add(geo::HaversineDistance(event.position, kOrigin));
  }
  // Rayleigh mean = sigma * sqrt(pi/2) ~ 62.7 m.
  EXPECT_NEAR(dx.Mean(), 50.0 * std::sqrt(3.14159265 / 2.0), 3.0);
}

TEST(GaussianNoise, KeepsTimestampsAndCounts) {
  const GaussianNoise mechanism;
  const model::Dataset input = SampleDataset();
  util::Rng rng(5);
  const model::Dataset out = mechanism.Apply(input, rng);
  ASSERT_EQ(out.EventCount(), input.EventCount());
  for (std::size_t i = 0; i < input.traces().front().size(); ++i) {
    EXPECT_EQ(out.traces().front()[i].time,
              input.traces().front()[i].time);
  }
}

TEST(Downsampling, EnforcesMinimumInterval) {
  DownsamplingConfig config;
  config.min_interval_s = 120;
  const Downsampling mechanism(config);
  const model::Dataset input = SampleDataset();  // 30 s period
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(input, rng);
  const auto& trace = out.traces().front();
  EXPECT_LT(trace.size(), input.traces().front().size());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time - trace[i - 1].time, 120);
  }
  // First fix always kept.
  EXPECT_EQ(trace.front().time, 0);
}

TEST(Downsampling, SlowInputUnchanged) {
  DownsamplingConfig config;
  config.min_interval_s = 10;  // input period is 30 s
  const Downsampling mechanism(config);
  const model::Dataset input = SampleDataset();
  util::Rng rng(1);
  EXPECT_EQ(mechanism.Apply(input, rng).EventCount(), input.EventCount());
}

TEST(SimpleMechanisms, Names) {
  EXPECT_EQ(Cloaking().Name(), "cloaking[cell=250m]");
  EXPECT_EQ(GaussianNoise().Name(), "gaussian[sigma=100m]");
  EXPECT_EQ(Downsampling().Name(), "downsampling[dt=120s]");
}

TEST(PerTraceMechanism, PreservesUserIdSpace) {
  const Cloaking mechanism;
  model::Dataset input;
  input.InternUser("first");
  input.AddTraceForUser("second", {{kOrigin, 1}, {kOrigin, 2}});
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(input, rng);
  EXPECT_EQ(out.UserCount(), 2u);
  EXPECT_EQ(out.UserName(0), "first");
  EXPECT_EQ(out.UserName(1), "second");
  EXPECT_EQ(out.traces().front().user(), 1u);
}

}  // namespace
}  // namespace mobipriv::mech
