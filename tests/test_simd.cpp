// util/simd.h contract tests: every shim op is pinned lane-for-lane,
// bit-for-bit against the scalar reference semantics documented in the
// header, over the full IEEE edge-value grid (signed zeros, denormals,
// NaN, infinities). The distance-batch kernels are then pinned against
// their documented contracts: bit-identity for HaversineBatch and
// WithinRadiusMask, <= 4 ULP for ProjectedMetricBatch and
// EquirectangularBatch (including near-antipodal inputs), and the
// vectorized GridIndex radius scan against a brute-force reference.
#include "util/simd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geo/distance_batch.h"
#include "geo/grid_index.h"
#include "geo/latlng.h"
#include "geo/point2.h"
#include "util/rng.h"

namespace mobipriv {
namespace {

using util::F64x4;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
constexpr double kMin = std::numeric_limits<double>::min();
constexpr double kMax = std::numeric_limits<double>::max();

/// The edge grid every binary op is exercised over (all pairs).
const std::vector<double>& EdgeValues() {
  static const std::vector<double> values = {
      +0.0,    -0.0,     1.0,     -1.0,    0.5,     -2.5,
      kDenorm, -kDenorm, kMin,    -kMin,   kMax,    -kMax,
      kInf,    -kInf,    kQNaN,   -kQNaN,  1e308,   -1e308,
      1e-308,  3.5,      -0.75,   1.0e16,  6371000.8};
  return values;
}

std::uint64_t Bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Lane-for-lane bitwise comparison of a shim result against 4 expected
/// scalars. Signed zeros must match exactly; when both sides are NaN the
/// lane passes — which NaN operand's sign/payload propagates through
/// arithmetic is unspecified by IEEE 754 and genuinely varies with the
/// compiler's operand order (addsd keeps the first source's NaN, and GCC
/// commutes freely), so pinning it would test register allocation, not
/// the shim. No kernel feeds NaN through arithmetic expecting a payload;
/// the contracts that matter on NaN are the quiet predicates, pinned
/// exactly below.
void ExpectLanes(F64x4 got, const double (&expect)[4], const char* op,
                 std::size_t case_index) {
  double lanes[4];
  got.Store(lanes);
  for (int k = 0; k < 4; ++k) {
    if (std::isnan(lanes[k]) && std::isnan(expect[k])) continue;
    EXPECT_EQ(Bits(lanes[k]), Bits(expect[k]))
        << op << " case " << case_index << " lane " << k << ": got "
        << lanes[k] << " want " << expect[k];
  }
}

/// Walks all pairs of edge values in groups of 4 and checks `got(a, b)`
/// against the scalar `ref(a, b)` per lane.
template <typename VecOp, typename ScalarRef>
void CheckBinaryOp(const char* name, VecOp&& got, ScalarRef&& ref) {
  const auto& edges = EdgeValues();
  std::vector<double> as, bs;
  for (double a : edges) {
    for (double b : edges) {
      as.push_back(a);
      bs.push_back(b);
    }
  }
  while (as.size() % 4 != 0) {
    as.push_back(1.0);
    bs.push_back(1.0);
  }
  for (std::size_t i = 0; i < as.size(); i += 4) {
    const F64x4 va = F64x4::Load(as.data() + i);
    const F64x4 vb = F64x4::Load(bs.data() + i);
    double expect[4];
    for (int k = 0; k < 4; ++k) expect[k] = ref(as[i + k], bs[i + k]);
    ExpectLanes(got(va, vb), expect, name, i);
  }
}

/// Same walk for unary ops.
template <typename VecOp, typename ScalarRef>
void CheckUnaryOp(const char* name, VecOp&& got, ScalarRef&& ref) {
  const auto& edges = EdgeValues();
  std::vector<double> as = edges;
  while (as.size() % 4 != 0) as.push_back(1.0);
  for (std::size_t i = 0; i < as.size(); i += 4) {
    const F64x4 va = F64x4::Load(as.data() + i);
    double expect[4];
    for (int k = 0; k < 4; ++k) expect[k] = ref(as[i + k]);
    ExpectLanes(got(va), expect, name, i);
  }
}

TEST(SimdShim, BackendIsReported) {
  // The constant must be one of the three spellings and agree with
  // kSimdEnabled; the parity CI job greps for "scalar" here.
  const std::string backend = util::kSimdBackend;
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar");
  EXPECT_EQ(backend != "scalar", util::kSimdEnabled);
  EXPECT_EQ(util::kSimdWidth, 4);
}

TEST(SimdShim, LoadStoreSetRoundTrip) {
  const double src[4] = {-0.0, kDenorm, kQNaN, -kInf};
  double dst[4] = {};
  F64x4::Load(src).Store(dst);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(Bits(dst[k]), Bits(src[k]));

  const F64x4 set = F64x4::Set(src[0], src[1], src[2], src[3]);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(Bits(set.Lane(k)), Bits(src[k]));

  const F64x4 ones = F64x4::Set1(-0.0);
  for (int k = 0; k < 4; ++k) EXPECT_EQ(Bits(ones.Lane(k)), Bits(-0.0));

  const double flat[8] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const F64x4 gathered = util::GatherAt(flat, 3);
  const double expect[4] = {4.0, 5.0, 6.0, 7.0};
  ExpectLanes(gathered, expect, "GatherAt", 0);
}

TEST(SimdShim, ArithmeticMatchesScalarBitForBit) {
  CheckBinaryOp(
      "add", [](F64x4 a, F64x4 b) { return a + b; },
      [](double a, double b) { return a + b; });
  CheckBinaryOp(
      "sub", [](F64x4 a, F64x4 b) { return a - b; },
      [](double a, double b) { return a - b; });
  CheckBinaryOp(
      "mul", [](F64x4 a, F64x4 b) { return a * b; },
      [](double a, double b) { return a * b; });
  CheckBinaryOp(
      "div", [](F64x4 a, F64x4 b) { return a / b; },
      [](double a, double b) { return a / b; });
}

TEST(SimdShim, UnaryOpsMatchScalarBitForBit) {
  CheckUnaryOp(
      "sqrt", [](F64x4 a) { return util::Sqrt(a); },
      [](double a) { return std::sqrt(a); });
  CheckUnaryOp(
      "floor", [](F64x4 a) { return util::Floor(a); },
      [](double a) { return std::floor(a); });
  CheckUnaryOp(
      "abs", [](F64x4 a) { return util::Abs(a); },
      [](double a) { return std::fabs(a); });
}

TEST(SimdShim, FmaIsSingleRounding) {
  CheckBinaryOp(
      "fma(a,b,1)",
      [](F64x4 a, F64x4 b) { return util::Fma(a, b, F64x4::Set1(1.0)); },
      [](double a, double b) { return std::fma(a, b, 1.0); });
  // The case that separates fused from unfused: a*b inexact, fma keeps
  // the low product bits that two roundings throw away.
  const double a = 1.0 + 0x1p-30;
  const double fused = std::fma(a, a, -1.0);
  const double unfused = a * a - 1.0;
  ASSERT_NE(Bits(fused), Bits(unfused));  // the distinction is real here
  EXPECT_EQ(Bits(util::Fma(F64x4::Set1(a), F64x4::Set1(a),
                           F64x4::Set1(-1.0))
                     .Lane(0)),
            Bits(fused));
}

TEST(SimdShim, MinMaxUseSecondOperandSemantics) {
  CheckBinaryOp(
      "min", [](F64x4 a, F64x4 b) { return util::Min(a, b); },
      [](double a, double b) { return a < b ? a : b; });
  CheckBinaryOp(
      "max", [](F64x4 a, F64x4 b) { return util::Max(a, b); },
      [](double a, double b) { return a > b ? a : b; });
  // Spot-check the documented asymmetries: b wins on NaN and equal zeros.
  EXPECT_EQ(Bits(util::Min(F64x4::Set1(kQNaN), F64x4::Set1(2.0)).Lane(0)),
            Bits(2.0));
  EXPECT_TRUE(std::isnan(
      util::Min(F64x4::Set1(2.0), F64x4::Set1(kQNaN)).Lane(0)));
  EXPECT_EQ(Bits(util::Min(F64x4::Set1(+0.0), F64x4::Set1(-0.0)).Lane(0)),
            Bits(-0.0));
  EXPECT_EQ(Bits(util::Min(F64x4::Set1(-0.0), F64x4::Set1(+0.0)).Lane(0)),
            Bits(+0.0));
}

TEST(SimdShim, ComparisonsAreQuietAndFullWidth) {
  const auto mask_of = [](bool p) {
    return p ? ~std::uint64_t{0} : std::uint64_t{0};
  };
  CheckBinaryOp(
      "cmple", [](F64x4 a, F64x4 b) { return util::CmpLe(a, b); },
      [&](double a, double b) {
        return std::bit_cast<double>(mask_of(a <= b));
      });
  CheckBinaryOp(
      "cmplt", [](F64x4 a, F64x4 b) { return util::CmpLt(a, b); },
      [&](double a, double b) {
        return std::bit_cast<double>(mask_of(a < b));
      });
  CheckBinaryOp(
      "cmpge", [](F64x4 a, F64x4 b) { return util::CmpGe(a, b); },
      [&](double a, double b) {
        return std::bit_cast<double>(mask_of(a >= b));
      });
}

TEST(SimdShim, MoveMaskSelectAndLogicOnMasks) {
  const F64x4 a = F64x4::Set(1.0, 5.0, kQNaN, -3.0);
  const F64x4 b = F64x4::Set(2.0, 4.0, 1.0, -3.0);
  const F64x4 le = util::CmpLe(a, b);  // lanes: T, F, F (NaN), T
  EXPECT_EQ(util::MoveMask(le), 0b1001);
  const F64x4 lt = util::CmpLt(a, b);  // lanes: T, F, F, F
  EXPECT_EQ(util::MoveMask(lt), 0b0001);

  EXPECT_EQ(util::MoveMask(util::And(le, lt)), 0b0001);
  EXPECT_EQ(util::MoveMask(util::Or(le, lt)), 0b1001);

  // The encounter scan's inverted predicate: NOT (r2 < d2) keeps lanes
  // where d2 <= r2 AND lanes where d2 is NaN — exactly the scalar
  // `if (d2 > r2) continue`.
  const F64x4 d2 = F64x4::Set(1.0, 9.0, kQNaN, 4.0);
  const F64x4 r2 = F64x4::Set1(4.0);
  const int kept = ~util::MoveMask(util::CmpLt(r2, d2)) & 0xF;
  EXPECT_EQ(kept, 0b1101);  // lane 1 (9 > 4) dropped, NaN lane kept

  const F64x4 sel = util::Select(le, F64x4::Set1(10.0), F64x4::Set1(20.0));
  const double expect[4] = {10.0, 20.0, 20.0, 10.0};
  ExpectLanes(sel, expect, "select", 0);

  // MoveMask reads sign bits on non-mask values too.
  EXPECT_EQ(util::MoveMask(F64x4::Set(-1.0, +0.0, -0.0, -kQNaN)), 0b1101);
}

// ---------------------------------------------------------------------------
// Batch distance kernels against their documented contracts.
// ---------------------------------------------------------------------------

/// ULP distance between two finite same-sign doubles.
std::uint64_t UlpDistance(double a, double b) {
  const auto ia = static_cast<std::int64_t>(Bits(a));
  const auto ib = static_cast<std::int64_t>(Bits(b));
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

/// Deterministic point cloud around an anchor (no wall-clock seeds).
struct Cloud {
  std::vector<double> x, y;
};

Cloud MakeCloud(std::size_t n, double scale, std::uint64_t seed) {
  util::Rng rng(seed);
  Cloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    cloud.x.push_back((rng.NextDouble() - 0.5) * scale);
    cloud.y.push_back((rng.NextDouble() - 0.5) * scale);
  }
  return cloud;
}

TEST(DistanceBatch, ProjectedMetricWithin4Ulp) {
  // Odd n so the scalar tail executes too.
  const Cloud cloud = MakeCloud(257, 5000.0, 42);
  const geo::Point2 anchor{120.0, -340.0};
  std::vector<double> out(cloud.x.size());
  geo::ProjectedMetricBatch(cloud.x.data(), cloud.y.data(), cloud.x.size(),
                            anchor, out.data());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double expect =
        geo::Distance(geo::Point2{cloud.x[i], cloud.y[i]}, anchor);
    EXPECT_LE(UlpDistance(out[i], expect), 4u) << "point " << i;
  }
  // Exact-zero distance must come out exactly zero.
  const double zx = anchor.x, zy = anchor.y;
  double zero_out = 1.0;
  geo::ProjectedMetricBatch(&zx, &zy, 1, anchor, &zero_out);
  EXPECT_EQ(Bits(zero_out), Bits(0.0));
}

TEST(DistanceBatch, EquirectangularWithin4Ulp) {
  util::Rng rng(7);
  std::vector<double> lat, lng;
  for (int i = 0; i < 203; ++i) {
    lat.push_back(45.0 + (rng.NextDouble() - 0.5) * 0.5);
    lng.push_back(4.8 + (rng.NextDouble() - 0.5) * 0.5);
  }
  const geo::LatLng anchor{45.76, 4.84};
  std::vector<double> out(lat.size());
  geo::EquirectangularBatch(lat.data(), lng.data(), lat.size(), anchor,
                            out.data());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double expect = geo::EquirectangularDistance(
        geo::LatLng{lat[i], lng[i]}, anchor);
    EXPECT_LE(UlpDistance(out[i], expect), 4u) << "point " << i;
  }
}

TEST(DistanceBatch, HaversineBitIdenticalIncludingAntipodes) {
  util::Rng rng(11);
  std::vector<double> lat, lng;
  // Global sweep plus near-antipodal points of the anchor — the regime
  // where asin error amplification rules out any reordered evaluation
  // (why the contract is bit-identity via per-lane scalar calls).
  for (int i = 0; i < 101; ++i) {
    lat.push_back((rng.NextDouble() - 0.5) * 180.0);
    lng.push_back((rng.NextDouble() - 0.5) * 360.0);
  }
  const geo::LatLng anchor{45.76, 4.84};
  for (int i = 0; i < 7; ++i) {
    lat.push_back(-anchor.lat + (rng.NextDouble() - 0.5) * 1e-6);
    lng.push_back(anchor.lng + 180.0 + (rng.NextDouble() - 0.5) * 1e-6);
  }
  std::vector<double> out(lat.size());
  geo::HaversineBatch(lat.data(), lng.data(), lat.size(), anchor,
                      out.data());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double expect =
        geo::HaversineDistance(geo::LatLng{lat[i], lng[i]}, anchor);
    EXPECT_EQ(Bits(out[i]), Bits(expect)) << "point " << i;
  }
}

TEST(DistanceBatch, WithinRadiusMaskBitIdenticalPredicate) {
  // Points straddling the radius, plus exact-boundary and NaN entries.
  const geo::Point2 anchor{10.0, 20.0};
  const double radius = 100.0;
  Cloud cloud = MakeCloud(97, 250.0, 99);
  for (auto& v : cloud.x) v += anchor.x;
  for (auto& v : cloud.y) v += anchor.y;
  cloud.x.push_back(anchor.x + radius);  // exactly on the boundary
  cloud.y.push_back(anchor.y);
  cloud.x.push_back(kQNaN);  // NaN coordinate: predicate false
  cloud.y.push_back(anchor.y);
  std::vector<std::uint8_t> mask(cloud.x.size(), 0xAA);
  const std::size_t count =
      geo::WithinRadiusMask(cloud.x.data(), cloud.y.data(), cloud.x.size(),
                            anchor, radius, mask.data());
  std::size_t expect_count = 0;
  for (std::size_t i = 0; i < cloud.x.size(); ++i) {
    const double dx = cloud.x[i] - anchor.x;
    const double dy = cloud.y[i] - anchor.y;
    const bool inside = dx * dx + dy * dy <= radius * radius;
    expect_count += inside ? 1 : 0;
    EXPECT_EQ(mask[i], inside ? 1 : 0) << "point " << i;
  }
  EXPECT_EQ(count, expect_count);
  EXPECT_EQ(mask[cloud.x.size() - 2], 1);  // boundary is inclusive
  EXPECT_EQ(mask[cloud.x.size() - 1], 0);  // NaN never inside
}

TEST(GridIndexSimd, RadiusScanMatchesBruteForce) {
  // The vectorized ForEachInRadius inner loop against an O(n) reference:
  // same hit set, ascending-id visit order within each cell preserved.
  util::Rng rng(5);
  std::vector<geo::Point2> points;
  geo::GridIndex index(50.0);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const geo::Point2 p{(rng.NextDouble() - 0.5) * 400.0,
                        (rng.NextDouble() - 0.5) * 400.0};
    points.push_back(p);
    index.Insert(p, i);
  }
  const geo::Point2 center{12.5, -33.0};
  for (const double radius : {5.0, 50.0, 120.0}) {
    std::vector<std::uint64_t> got;
    index.ForEachInRadius(center, radius,
                          [&](std::uint64_t id, geo::Point2) {
                            got.push_back(id);
                          });
    std::vector<std::uint64_t> expect;
    for (std::uint64_t i = 0; i < points.size(); ++i) {
      const double dx = points[i].x - center.x;
      const double dy = points[i].y - center.y;
      if (dx * dx + dy * dy <= radius * radius) expect.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "radius " << radius;
    EXPECT_EQ(index.AnyWithin(center, radius), !expect.empty())
        << "radius " << radius;
  }
}

}  // namespace
}  // namespace mobipriv
