#include "model/trace.h"

#include <gtest/gtest.h>

namespace mobipriv::model {
namespace {

Trace MakeTrace() {
  return Trace(3, {{{45.00, 4.00}, 100},
                   {{45.01, 4.00}, 200},
                   {{45.02, 4.00}, 350}});
}

TEST(Trace, BasicAccessors) {
  const Trace trace = MakeTrace();
  EXPECT_EQ(trace.user(), 3u);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().time, 100);
  EXPECT_EQ(trace.back().time, 350);
  EXPECT_EQ(trace[1].time, 200);
}

TEST(Trace, EmptyTrace) {
  const Trace trace;
  EXPECT_EQ(trace.user(), kInvalidUser);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.Duration(), 0);
  EXPECT_DOUBLE_EQ(trace.LengthMeters(), 0.0);
  EXPECT_TRUE(trace.IsTimeOrdered());
  EXPECT_TRUE(trace.BoundingBox().IsEmpty());
}

TEST(Trace, Duration) {
  EXPECT_EQ(MakeTrace().Duration(), 250);
  Trace single(1, {{{45.0, 4.0}, 42}});
  EXPECT_EQ(single.Duration(), 0);
}

TEST(Trace, LengthMeters) {
  const Trace trace = MakeTrace();
  // Two hops of ~0.01 deg latitude ~ 1112 m each.
  EXPECT_NEAR(trace.LengthMeters(), 2224.0, 5.0);
}

TEST(Trace, SortByTimeAndOrderCheck) {
  Trace trace(1, {{{45.0, 4.0}, 300}, {{45.1, 4.0}, 100}, {{45.2, 4.0}, 200}});
  EXPECT_FALSE(trace.IsTimeOrdered());
  trace.SortByTime();
  EXPECT_TRUE(trace.IsTimeOrdered());
  EXPECT_EQ(trace.front().time, 100);
  EXPECT_NEAR(trace.front().position.lat, 45.1, 1e-12);
}

TEST(Trace, SortIsStableForEqualTimes) {
  Trace trace(1, {{{45.0, 4.0}, 100}, {{45.1, 4.0}, 100}});
  trace.SortByTime();
  EXPECT_NEAR(trace[0].position.lat, 45.0, 1e-12);
  EXPECT_NEAR(trace[1].position.lat, 45.1, 1e-12);
}

TEST(Trace, PositionsAndTimes) {
  const Trace trace = MakeTrace();
  const auto positions = trace.Positions();
  const auto times = trace.Times();
  ASSERT_EQ(positions.size(), 3u);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(positions[2].lat, 45.02, 1e-12);
  EXPECT_EQ(times[2], 350);
}

TEST(Trace, BoundingBox) {
  const auto box = MakeTrace().BoundingBox();
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_NEAR(box.SouthWest().lat, 45.00, 1e-12);
  EXPECT_NEAR(box.NorthEast().lat, 45.02, 1e-12);
}

TEST(Trace, SliceClosedInterval) {
  const Trace trace = MakeTrace();
  const Trace slice = trace.Slice(150, 350);
  EXPECT_EQ(slice.user(), trace.user());
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.front().time, 200);
  EXPECT_EQ(slice.back().time, 350);
  EXPECT_TRUE(trace.Slice(1000, 2000).empty());
}

TEST(Trace, AppendKeepsUser) {
  Trace trace;
  trace.set_user(9);
  trace.Append({{45.0, 4.0}, 1});
  EXPECT_EQ(trace.user(), 9u);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Event, Equality) {
  const Event a{{45.0, 4.0}, 10};
  const Event b{{45.0, 4.0}, 10};
  const Event c{{45.0, 4.0}, 11};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace mobipriv::model
