#include "metrics/kdelta.h"

#include <gtest/gtest.h>

#include "geo/projection.h"
#include "mechanisms/wait4me.h"

namespace mobipriv::metrics {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// `count` eastbound traces, `gap_m` apart vertically, same time span.
model::Dataset ParallelTraces(std::size_t count, double gap_m) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  for (std::size_t u = 0; u < count; ++u) {
    std::vector<model::Event> events;
    for (int i = 0; i <= 10; ++i) {
      events.push_back(
          {projection.Unproject({i * 100.0, static_cast<double>(u) * gap_m}),
           static_cast<util::Timestamp>(i * 100)});
    }
    dataset.AddTraceForUser("u" + std::to_string(u), std::move(events));
  }
  return dataset;
}

TEST(KDelta, CoMovingGroupHasFullK) {
  KDeltaConfig config;
  config.delta_m = 300.0;
  const auto report =
      MeasureKDeltaAnonymity(ParallelTraces(4, 50.0), config);
  ASSERT_EQ(report.per_trace.size(), 4u);
  for (const auto& t : report.per_trace) {
    EXPECT_EQ(t.k, 4u);  // everyone within 150 m of everyone
  }
  EXPECT_DOUBLE_EQ(report.FractionWithK(4), 1.0);
  EXPECT_DOUBLE_EQ(report.FractionWithK(5), 0.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(KDelta, FarTracesAreAlone) {
  KDeltaConfig config;
  config.delta_m = 100.0;
  const auto report =
      MeasureKDeltaAnonymity(ParallelTraces(3, 5000.0), config);
  for (const auto& t : report.per_trace) {
    EXPECT_EQ(t.k, 1u);
  }
  EXPECT_DOUBLE_EQ(report.FractionWithK(2), 0.0);
}

TEST(KDelta, DeltaControlsGroupMembership) {
  // 3 traces at 0, 400, 800 m: with delta 500, the middle sees both
  // neighbours (k=3) but the outer ones see only the middle (k=2).
  KDeltaConfig config;
  config.delta_m = 500.0;
  const auto report =
      MeasureKDeltaAnonymity(ParallelTraces(3, 400.0), config);
  ASSERT_EQ(report.per_trace.size(), 3u);
  EXPECT_EQ(report.per_trace[0].k, 2u);
  EXPECT_EQ(report.per_trace[1].k, 3u);
  EXPECT_EQ(report.per_trace[2].k, 2u);
}

TEST(KDelta, CompanionMustSpanLifetime) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  // Long trace 0..2000 s and a short companion 500..1000 s at distance 0.
  std::vector<model::Event> long_events;
  std::vector<model::Event> short_events;
  for (int i = 0; i <= 20; ++i) {
    long_events.push_back({projection.Unproject({i * 100.0, 0.0}),
                           static_cast<util::Timestamp>(i * 100)});
  }
  for (int i = 5; i <= 10; ++i) {
    short_events.push_back({projection.Unproject({i * 100.0, 0.0}),
                            static_cast<util::Timestamp>(i * 100)});
  }
  dataset.AddTraceForUser("long", std::move(long_events));
  dataset.AddTraceForUser("short", std::move(short_events));
  const auto report = MeasureKDeltaAnonymity(dataset);
  // The long trace is not covered by the short one...
  EXPECT_EQ(report.per_trace[0].k, 1u);
  // ...but the short trace IS covered by the long one.
  EXPECT_EQ(report.per_trace[1].k, 2u);
}

TEST(KDelta, ToleranceForgivesBriefSeparations) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  std::vector<model::Event> a;
  std::vector<model::Event> b;
  for (int i = 0; i <= 10; ++i) {
    a.push_back({projection.Unproject({i * 100.0, 0.0}),
                 static_cast<util::Timestamp>(i * 100)});
    // b detours 1 km away for exactly one step.
    const double offset = (i == 5) ? 1000.0 : 10.0;
    b.push_back({projection.Unproject({i * 100.0, offset}),
                 static_cast<util::Timestamp>(i * 100)});
  }
  dataset.AddTraceForUser("a", std::move(a));
  dataset.AddTraceForUser("b", std::move(b));
  KDeltaConfig strict;
  strict.delta_m = 200.0;
  strict.grid_step_s = 100;
  EXPECT_EQ(MeasureKDeltaAnonymity(dataset, strict).per_trace[0].k, 1u);
  KDeltaConfig tolerant = strict;
  tolerant.tolerance = 0.15;  // one miss in 11 steps allowed
  EXPECT_EQ(MeasureKDeltaAnonymity(dataset, tolerant).per_trace[0].k, 2u);
}

TEST(KDelta, EmptyAndDegenerate) {
  EXPECT_TRUE(MeasureKDeltaAnonymity(model::Dataset{}).per_trace.empty());
  model::Dataset single;
  single.AddTraceForUser("u", {{kOrigin, 0}});
  const auto report = MeasureKDeltaAnonymity(single);
  ASSERT_EQ(report.per_trace.size(), 1u);
  EXPECT_EQ(report.per_trace[0].k, 1u);
}

TEST(KDelta, Wait4MeOutputSatisfiesItsOwnGuarantee) {
  // The constructive baseline must measure at k >= its configured k under
  // its configured delta — the two modules validate each other.
  mech::Wait4MeConfig w4m_config;
  w4m_config.k = 3;
  w4m_config.delta_m = 400.0;
  const mech::Wait4Me mechanism(w4m_config);
  util::Rng rng(1);
  const model::Dataset published =
      mechanism.Apply(ParallelTraces(6, 120.0), rng);
  ASSERT_GT(published.TraceCount(), 0u);
  KDeltaConfig measure;
  measure.delta_m = 400.0;
  measure.grid_step_s = 60;
  const auto report = MeasureKDeltaAnonymity(published, measure);
  for (const auto& t : report.per_trace) {
    EXPECT_GE(t.k, 3u) << "trace " << t.trace_index;
  }
}

}  // namespace
}  // namespace mobipriv::metrics
