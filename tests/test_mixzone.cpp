#include "mechanisms/mixzone.h"

#include <gtest/gtest.h>

#include "geo/projection.h"

namespace mobipriv::mech {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// Two users crossing at the planar origin at the same time: A travels
/// west->east, B south->north, both passing (0,0) at t = 500.
model::Dataset CrossingPair() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  const auto a = dataset.InternUser("A");
  const auto b = dataset.InternUser("B");
  model::Trace ta;
  ta.set_user(a);
  model::Trace tb;
  tb.set_user(b);
  for (int i = 0; i <= 100; ++i) {
    const double s = -1000.0 + 20.0 * i;  // -1000 .. 1000 m
    const auto t = static_cast<util::Timestamp>(i * 10);  // 0 .. 1000 s
    ta.Append({projection.Unproject({s, 0.0}), t});
    tb.Append({projection.Unproject({0.0, s}), t});
  }
  dataset.AddTrace(std::move(ta));
  dataset.AddTrace(std::move(tb));
  return dataset;
}

/// Same paths but 6 hours apart: spatial crossing, no temporal meeting.
model::Dataset DisjointTimesPair() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  const auto a = dataset.InternUser("A");
  const auto b = dataset.InternUser("B");
  model::Trace ta;
  ta.set_user(a);
  model::Trace tb;
  tb.set_user(b);
  for (int i = 0; i <= 100; ++i) {
    const double s = -1000.0 + 20.0 * i;
    ta.Append({projection.Unproject({s, 0.0}),
               static_cast<util::Timestamp>(i * 10)});
    tb.Append({projection.Unproject({0.0, s}),
               static_cast<util::Timestamp>(21600 + i * 10)});
  }
  dataset.AddTrace(std::move(ta));
  dataset.AddTrace(std::move(tb));
  return dataset;
}

TEST(MixZone, DetectsTheNaturalCrossing) {
  const MixZone mechanism;
  util::Rng rng(1);
  MixZoneReport report;
  (void)mechanism.ApplyWithReport(CrossingPair(), rng, report);
  EXPECT_GT(report.encounters, 0u);
  EXPECT_GE(report.zones.size(), 1u);
  EXPECT_GE(report.occurrences, 1u);
  // The zone sits at the crossing point (planar origin).
  EXPECT_LT(report.zones.front().center.Norm(), 200.0);
}

TEST(MixZone, NoMeetingNoZone) {
  const MixZone mechanism;
  util::Rng rng(1);
  MixZoneReport report;
  const model::Dataset out =
      mechanism.ApplyWithReport(DisjointTimesPair(), rng, report);
  EXPECT_EQ(report.occurrences, 0u);
  EXPECT_EQ(report.swaps_applied, 0u);
  EXPECT_EQ(report.suppressed_events, 0u);
  EXPECT_EQ(out.EventCount(), DisjointTimesPair().EventCount());
}

TEST(MixZone, SuppressesInZonePoints) {
  const MixZone mechanism;  // radius 150 m
  util::Rng rng(1);
  MixZoneReport report;
  const model::Dataset out =
      mechanism.ApplyWithReport(CrossingPair(), rng, report);
  EXPECT_GT(report.suppressed_events, 0u);
  EXPECT_EQ(out.EventCount() + report.suppressed_events,
            report.total_events);
  // No published event inside any zone disc during its episode.
  const geo::LocalProjection projection(kOrigin);
  for (const auto& zone : report.zones) {
    for (const auto& trace : out.traces()) {
      for (const auto& event : trace) {
        const double d =
            geo::Distance(projection.Project(event.position), zone.center);
        EXPECT_GT(d, zone.radius_m - 1.0);
      }
    }
  }
}

TEST(MixZone, SuppressionOffKeepsEverything) {
  MixZoneConfig config;
  config.suppress_zone_points = false;
  const MixZone mechanism(config);
  util::Rng rng(1);
  MixZoneReport report;
  const model::Dataset out =
      mechanism.ApplyWithReport(CrossingPair(), rng, report);
  EXPECT_EQ(report.suppressed_events, 0u);
  EXPECT_EQ(out.EventCount(), report.total_events);
}

TEST(MixZone, SwapExchangesSuffixes) {
  // Find a seed where the permutation is a real swap, then verify the
  // suffixes actually moved: A's published identity ends where B's input
  // trace ends.
  const model::Dataset input = CrossingPair();
  const geo::LocalProjection projection(kOrigin);
  bool verified_swap = false;
  for (std::uint64_t seed = 0; seed < 32 && !verified_swap; ++seed) {
    const MixZone mechanism;
    util::Rng rng(seed);
    MixZoneReport report;
    const model::Dataset out =
        mechanism.ApplyWithReport(input, rng, report);
    if (report.swaps_applied == 0) continue;
    verified_swap = true;
    // After the swap, identity A's trace must end at B's destination
    // (north end: y ~ +1000) instead of A's own (east end: x ~ +1000).
    const auto a = out.FindUser("A");
    ASSERT_TRUE(a.has_value());
    bool found_a_trace = false;
    for (const auto& trace : out.traces()) {
      if (trace.user() != *a || trace.empty()) continue;
      // Examine the trace containing post-crossing times.
      if (trace.back().time < 600) continue;
      found_a_trace = true;
      const geo::Point2 end = projection.Project(trace.back().position);
      EXPECT_GT(end.y, 500.0) << "A's suffix should be B's path";
      EXPECT_LT(std::abs(end.x), 200.0);
    }
    EXPECT_TRUE(found_a_trace);
  }
  EXPECT_TRUE(verified_swap) << "no swap drawn in 32 seeds (p ~ 2^-32)";
}

TEST(MixZone, IdentityPermutationLeavesTracesIntact) {
  // With exactly 2 participants a uniform permutation is identity half the
  // time; find such a seed and check the output equals input minus the
  // suppressed points.
  const model::Dataset input = CrossingPair();
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const MixZone mechanism;
    util::Rng rng(seed);
    MixZoneReport report;
    const model::Dataset out = mechanism.ApplyWithReport(input, rng, report);
    if (report.swaps_applied != 0) continue;
    const geo::LocalProjection projection(kOrigin);
    const auto a = out.FindUser("A");
    ASSERT_TRUE(a.has_value());
    for (const auto& trace : out.traces()) {
      if (trace.user() != *a || trace.back().time < 600) continue;
      const geo::Point2 end = projection.Project(trace.back().position);
      EXPECT_GT(end.x, 500.0) << "A keeps its own (eastbound) suffix";
    }
    return;
  }
  FAIL() << "no identity permutation drawn in 32 seeds";
}

TEST(MixZone, ReportAccounting) {
  const MixZone mechanism;
  util::Rng rng(3);
  MixZoneReport report;
  (void)mechanism.ApplyWithReport(CrossingPair(), rng, report);
  EXPECT_EQ(report.total_events, CrossingPair().EventCount());
  EXPECT_EQ(report.anonymity_set_sizes.size(), report.occurrences);
  EXPECT_GE(report.SuppressionRatio(), 0.0);
  EXPECT_LE(report.SuppressionRatio(), 1.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(MixZone, MinUsersThresholdRespected) {
  MixZoneConfig config;
  config.min_users = 3;  // two crossing users are not enough
  const MixZone mechanism(config);
  util::Rng rng(1);
  MixZoneReport report;
  (void)mechanism.ApplyWithReport(CrossingPair(), rng, report);
  EXPECT_EQ(report.occurrences, 0u);
  EXPECT_EQ(report.swaps_applied, 0u);
}

TEST(MixZone, EmptyDataset) {
  const MixZone mechanism;
  util::Rng rng(1);
  MixZoneReport report;
  const model::Dataset out =
      mechanism.ApplyWithReport(model::Dataset{}, rng, report);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(report.occurrences, 0u);
}

TEST(MixZone, SingleUserNeverMixes) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  const auto u = dataset.InternUser("solo");
  model::Trace trace;
  trace.set_user(u);
  for (int i = 0; i <= 100; ++i) {
    trace.Append({projection.Unproject({20.0 * i, 0.0}),
                  static_cast<util::Timestamp>(i * 10)});
  }
  dataset.AddTrace(std::move(trace));
  const MixZone mechanism;
  util::Rng rng(1);
  MixZoneReport report;
  const model::Dataset out = mechanism.ApplyWithReport(dataset, rng, report);
  EXPECT_EQ(report.encounters, 0u);
  EXPECT_EQ(out.EventCount(), dataset.EventCount());
}

TEST(MixZone, NameEncodesConfig) {
  MixZoneConfig config;
  config.zone_radius_m = 99.0;
  config.time_window_s = 42;
  EXPECT_EQ(MixZone(config).Name(), "mixzone[r=99m,w=42s]");
}

}  // namespace
}  // namespace mobipriv::mech
