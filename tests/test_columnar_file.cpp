// Columnar container contracts: CSV -> .mpc -> Dataset round-trips
// bitwise-identical to the parsed Dataset (owning and mmap paths), and
// every class of corruption — bad magic, version skew, truncation, short
// sections, checksum flips, inconsistent tables — fails with a clean
// IoError instead of UB (this binary runs under ASan in CI).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "model/columnar_file.h"
#include "model/event_store.h"
#include "model/io.h"
#include "synth/population.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

// Bit-level double equality: NaN payloads, -0.0 vs 0.0 and denormals all
// distinguish — "bitwise identical" means exactly this.
void ExpectSameBits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

void ExpectDatasetsBitwiseIdentical(const model::Dataset& a,
                                    const model::Dataset& b) {
  ASSERT_EQ(a.UserCount(), b.UserCount());
  for (model::UserId id = 0; id < a.UserCount(); ++id) {
    EXPECT_EQ(a.UserName(id), b.UserName(id));
  }
  ASSERT_EQ(a.TraceCount(), b.TraceCount());
  for (std::size_t t = 0; t < a.TraceCount(); ++t) {
    const model::Trace& ta = a.traces()[t];
    const model::Trace& tb = b.traces()[t];
    ASSERT_EQ(ta.user(), tb.user()) << "trace " << t;
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].time, tb[i].time);
      ExpectSameBits(ta[i].position.lat, tb[i].position.lat);
      ExpectSameBits(ta[i].position.lng, tb[i].position.lng);
    }
  }
}

model::Dataset SynthWorld() {
  synth::PopulationConfig config;
  config.agents = 8;
  config.days = 1;
  config.seed = 77;
  return synth::SyntheticWorld(config).dataset();
}

/// A dataset built to stress the format: unicode names, an empty trace,
/// a user interned without traces, multiple traces per user, and doubles
/// whose bit patterns a text round trip would destroy.
model::Dataset TrickyDataset() {
  model::Dataset d;
  d.AddTraceForUser("alice", {{{48.8566, 2.3522}, 1000}});
  d.AddTraceForUser(
      "b\xc3\xb6"
      "b",  // "böb" in UTF-8
      {{{-0.0, 0.0}, 0},
       {{5e-324, -5e-324}, 1},                        // denormals
       {{0.1 + 0.2, 1.0 / 3.0}, 2},                   // non-representable
       {{90.0, -180.0}, 9223372036854775807LL}});     // extreme timestamp
  d.AddTraceForUser("alice", {{{48.86, 2.36}, 2000}, {{48.87, 2.37}, 3000}});
  d.AddTrace(model::Trace(d.InternUser("empty-trace-user"), {}));
  d.InternUser("traceless");
  return d;
}

std::vector<std::byte> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::vector<char> chars{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  std::vector<std::byte> bytes(chars.size());
  std::memcpy(bytes.data(), chars.data(), chars.size());
  return bytes;
}

void Dump(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t GetU64(const std::vector<std::byte>& b, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, b.data() + off, 8);
  return v;
}
void PutU64(std::vector<std::byte>& b, std::size_t off, std::uint64_t v) {
  std::memcpy(b.data() + off, &v, 8);
}

// Directory entry for section `id` (32 bytes each, starting at 64).
std::size_t DirEntryOffset(const std::vector<std::byte>& bytes,
                           std::uint32_t id) {
  std::uint32_t count;
  std::memcpy(&count, bytes.data() + 12, 4);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t entry_id;
    std::memcpy(&entry_id, bytes.data() + 64 + i * 32, 4);
    if (entry_id == id) return 64 + i * 32;
  }
  ADD_FAILURE() << "section " << id << " not found";
  return 0;
}

// Recomputes the directory checksum (header offset 56) after a test
// patched directory bytes.
void FixDirectoryChecksum(std::vector<std::byte>& bytes) {
  std::uint32_t count;
  std::memcpy(&count, bytes.data() + 12, 4);
  PutU64(bytes, 56, model::Fnv1a64(bytes.data() + 64, count * 32));
}

// ---- Round trips ------------------------------------------------------------

TEST(ColumnarRoundTrip, CsvToColumnarMatchesParsedDatasetBitwise) {
  // The acceptance path: parse CSV, persist columnar, load both ways,
  // compare against the parsed dataset bit for bit.
  const model::Dataset world = SynthWorld();
  std::ostringstream csv;
  model::WriteCsv(world, csv);
  const model::Dataset parsed = model::ReadCsvText(csv.str());

  const std::string path = TempPath("roundtrip.mpc");
  model::WriteColumnar(model::EventStore::FromDataset(parsed), path);

  const model::Dataset read = model::ReadColumnar(path).ToDataset();
  ExpectDatasetsBitwiseIdentical(parsed, read);

  const model::MappedColumnar mapped = model::MapColumnar(path);
  ExpectDatasetsBitwiseIdentical(parsed, mapped.ToDataset());
}

TEST(ColumnarRoundTrip, PreservesBitPatternsNamesAndEmptyTraces) {
  const model::Dataset tricky = TrickyDataset();
  const std::string path = TempPath("tricky.mpc");
  model::WriteColumnar(model::EventStore::FromDataset(tricky), path);

  const model::Dataset read = model::ReadColumnar(path).ToDataset();
  ExpectDatasetsBitwiseIdentical(tricky, read);
  // The traceless user survives (names are part of the format).
  EXPECT_EQ(read.FindUser("traceless").has_value(), true);

  const model::MappedColumnar mapped = model::MapColumnar(path);
  ExpectDatasetsBitwiseIdentical(tricky, mapped.ToDataset());
  EXPECT_EQ(mapped.UserCount(), tricky.UserCount());
}

TEST(ColumnarRoundTrip, EmptyStore) {
  const std::string path = TempPath("empty.mpc");
  model::WriteColumnar(model::EventStore(), path);
  const model::EventStore read = model::ReadColumnar(path);
  EXPECT_EQ(read.TraceCount(), 0u);
  EXPECT_EQ(read.EventCount(), 0u);
  EXPECT_EQ(read.UserCount(), 0u);
  const model::MappedColumnar mapped = model::MapColumnar(path);
  EXPECT_TRUE(mapped.empty());
  EXPECT_EQ(mapped.View().TraceCount(), 0u);
}

TEST(ColumnarRoundTrip, MappedViewsAliasTheMappingZeroCopy) {
  const model::Dataset world = SynthWorld();
  const model::EventStore store = model::EventStore::FromDataset(world);
  const std::string path = TempPath("zerocopy.mpc");
  model::WriteColumnar(store, path);

  const model::MappedColumnar mapped =
      model::MapColumnar(path, {.verify_checksums = true});
  ASSERT_EQ(mapped.TraceCount(), store.TraceCount());
  ASSERT_EQ(mapped.EventCount(), store.EventCount());
  for (std::size_t t = 0; t < store.TraceCount(); ++t) {
    const model::TraceView a = store.View(t);
    const model::TraceView b = mapped.View(t);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.user(), b.user());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ExpectSameBits(a.lat(i), b.lat(i));
      ExpectSameBits(a.lng(i), b.lng(i));
      EXPECT_EQ(a.time(i), b.time(i));
    }
  }
}

TEST(ColumnarRoundTrip, LoadSaveDatasetDispatchOnExtension) {
  const model::Dataset world = SynthWorld();
  const std::string mpc = TempPath("dispatch.mpc");
  const std::string csv = TempPath("dispatch.csv");
  model::SaveDataset(world, mpc);
  model::SaveDataset(world, csv);
  // The columnar path is bit-exact (trace boundaries included); the CSV
  // path follows the text format's own semantics (rows regroup into one
  // trace per user, precision per its own contract, pinned elsewhere).
  ExpectDatasetsBitwiseIdentical(world, model::LoadDataset(mpc));
  EXPECT_EQ(model::LoadDataset(csv).EventCount(), world.EventCount());
  EXPECT_TRUE(model::IsColumnarPath("x/y/z.mpc"));
  EXPECT_FALSE(model::IsColumnarPath("x/y/z.csv"));
  EXPECT_FALSE(model::IsColumnarPath(".mpc.csv"));
}

// ---- Corruption -------------------------------------------------------------

class ColumnarCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.mpc");
    model::WriteColumnar(model::EventStore::FromDataset(SynthWorld()), path_);
    bytes_ = Slurp(path_);
    ASSERT_GE(bytes_.size(), 224u);
  }

  /// Writes `bytes_` back and expects both load paths to reject it.
  void ExpectRejected(const std::string& label) {
    Dump(path_, bytes_);
    EXPECT_THROW(model::ReadColumnar(path_), model::IoError) << label;
    EXPECT_THROW(model::MapColumnar(path_), model::IoError) << label;
  }

  std::string path_;
  std::vector<std::byte> bytes_;
};

TEST_F(ColumnarCorruption, BadMagic) {
  bytes_[0] = std::byte{'X'};
  ExpectRejected("magic");
}

TEST_F(ColumnarCorruption, UnsupportedVersion) {
  bytes_[8] = std::byte{0xEE};
  ExpectRejected("version");
}

TEST_F(ColumnarCorruption, HeaderFieldFlip) {
  bytes_[17] ^= std::byte{0x01};  // user_count
  ExpectRejected("header checksum");
}

TEST_F(ColumnarCorruption, TruncatedToHalf) {
  bytes_.resize(bytes_.size() / 2);
  ExpectRejected("truncation");
}

TEST_F(ColumnarCorruption, TruncatedBelowHeader) {
  bytes_.resize(17);
  ExpectRejected("tiny file");
}

TEST_F(ColumnarCorruption, TrailingGarbageAppended) {
  bytes_.push_back(std::byte{0xAB});
  ExpectRejected("trailing bytes");
}

TEST_F(ColumnarCorruption, DirectoryFlip) {
  bytes_[64 + 8] ^= std::byte{0x01};  // first entry's offset
  ExpectRejected("directory checksum");
}

TEST_F(ColumnarCorruption, ShortColumnSection) {
  // Shrink the lat section's recorded size (checksums recomputed so only
  // the size/count consistency check can catch it).
  const std::size_t entry = DirEntryOffset(bytes_, 3);
  PutU64(bytes_, entry + 16, GetU64(bytes_, entry + 16) - 8);
  FixDirectoryChecksum(bytes_);
  ExpectRejected("short column section");
}

TEST_F(ColumnarCorruption, TraceRangeOutOfBounds) {
  // Point the first trace record past the end of the columns, with all
  // checksums made valid again: only the range validation is left.
  const std::size_t entry = DirEntryOffset(bytes_, 2);
  const std::size_t off = GetU64(bytes_, entry + 8);
  const std::size_t size = GetU64(bytes_, entry + 16);
  ASSERT_GE(size, 24u);
  PutU64(bytes_, off + 16, 1u << 30);  // record 0's `end`
  PutU64(bytes_, entry + 24, model::Fnv1a64(bytes_.data() + off, size));
  FixDirectoryChecksum(bytes_);
  ExpectRejected("trace range");
}

TEST_F(ColumnarCorruption, NameBlobFlip) {
  // Names are decoded eagerly, so their checksum is enforced on BOTH
  // load paths, unlike the columns.
  const std::size_t entry = DirEntryOffset(bytes_, 1);
  const std::size_t off = GetU64(bytes_, entry + 8);
  const std::size_t size = GetU64(bytes_, entry + 16);
  bytes_[off + size - 1] ^= std::byte{0x01};
  ExpectRejected("name blob");
}

TEST_F(ColumnarCorruption, ColumnFlipCaughtByReadAndVerifiedMap) {
  const std::size_t entry = DirEntryOffset(bytes_, 3);
  const std::size_t off = GetU64(bytes_, entry + 8);
  bytes_[off] ^= std::byte{0x01};
  Dump(path_, bytes_);
  // Owning read always verifies columns.
  EXPECT_THROW(model::ReadColumnar(path_), model::IoError);
  // Mapped open verifies them only on request (documented trade-off):
  EXPECT_THROW(model::MapColumnar(path_, {.verify_checksums = true}),
               model::IoError);
  EXPECT_NO_THROW(model::MapColumnar(path_));
}

TEST(ColumnarCorruptionCrafted, DuplicateUserNamesRejectedOnBothPaths) {
  // Forge a checksum-valid file whose NAME table holds the same name
  // twice: both load paths must reject it identically (the mapped path
  // must not silently mislabel users where the owning path errors).
  model::Dataset d;
  d.AddTraceForUser("aa", {{{1.0, 2.0}, 10}});
  d.AddTraceForUser("ab", {{{3.0, 4.0}, 20}});
  const std::string path = TempPath("dupnames.mpc");
  model::WriteColumnar(model::EventStore::FromDataset(d), path);
  std::vector<std::byte> bytes = Slurp(path);

  const std::size_t entry = DirEntryOffset(bytes, 1);
  const std::size_t off = GetU64(bytes, entry + 8);
  const std::size_t size = GetU64(bytes, entry + 16);
  // Blob "aaab" follows the 3 offsets; make it "aaaa" -> names {"aa","aa"}.
  bytes[off + 3 * 8 + 3] = std::byte{'a'};
  PutU64(bytes, entry + 24, model::Fnv1a64(bytes.data() + off, size));
  FixDirectoryChecksum(bytes);
  Dump(path, bytes);

  EXPECT_THROW(model::ReadColumnar(path), model::IoError);
  EXPECT_THROW(model::MapColumnar(path), model::IoError);
}

TEST_F(ColumnarCorruption, MissingFile) {
  EXPECT_THROW(model::ReadColumnar(TempPath("does-not-exist.mpc")),
               model::IoError);
  EXPECT_THROW(model::MapColumnar(TempPath("does-not-exist.mpc")),
               model::IoError);
}

}  // namespace
}  // namespace mobipriv
