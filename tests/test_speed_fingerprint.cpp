#include "attacks/speed_fingerprint.h"

#include <gtest/gtest.h>

#include "geo/projection.h"
#include "mechanisms/speed_smoothing.h"
#include "synth/population.h"

namespace mobipriv::attacks {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// A trace of `user` moving east at `speed_mps` for `hops` fixes.
model::Trace ConstantTrace(model::UserId user, double speed_mps,
                           util::Timestamp t0, int hops = 20) {
  const geo::LocalProjection projection(kOrigin);
  model::Trace trace;
  trace.set_user(user);
  for (int i = 0; i <= hops; ++i) {
    trace.Append({projection.Unproject({speed_mps * 60.0 * i, 0.0}),
                  t0 + static_cast<util::Timestamp>(i * 60)});
  }
  return trace;
}

TEST(SpeedFingerprint, BuildsOneProfilePerUser) {
  model::Dataset train;
  train.InternUser("slow");
  train.InternUser("fast");
  train.AddTrace(ConstantTrace(0, 1.0, 0));
  train.AddTrace(ConstantTrace(0, 1.2, 90000));
  train.AddTrace(ConstantTrace(1, 20.0, 0));
  const SpeedFingerprintAttack attack;
  const auto profiles = attack.BuildProfiles(train);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_NEAR(profiles[0].mean_mps, 1.1, 0.05);
  EXPECT_EQ(profiles[0].traces, 2u);
  EXPECT_NEAR(profiles[1].mean_mps, 20.0, 0.5);
}

TEST(SpeedFingerprint, LinksDistinctiveSpeeds) {
  model::Dataset train;
  train.InternUser("slow");
  train.InternUser("fast");
  train.AddTrace(ConstantTrace(0, 1.0, 0));
  train.AddTrace(ConstantTrace(1, 20.0, 0));
  model::Dataset test;
  test.InternUser("slow");
  test.InternUser("fast");
  test.AddTrace(ConstantTrace(0, 1.1, 90000));
  test.AddTrace(ConstantTrace(1, 19.0, 90000));
  const SpeedFingerprintAttack attack;
  const auto results =
      attack.Attack(attack.BuildProfiles(train), test);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].predicted_user, results[0].true_user);
  EXPECT_EQ(results[1].predicted_user, results[1].true_user);
  EXPECT_DOUBLE_EQ(SpeedFingerprintAttack::Accuracy(results), 1.0);
}

TEST(SpeedFingerprint, SkipsDegenerateTraces) {
  model::Dataset test;
  test.InternUser("u");
  test.AddTrace(model::Trace(0, {{kOrigin, 5}}));  // single fix
  model::Trace zero_duration(0, {{kOrigin, 5}, {kOrigin, 5}});
  test.AddTrace(zero_duration);
  const SpeedFingerprintAttack attack;
  const auto results = attack.Attack({}, test);
  EXPECT_TRUE(results.empty());
  EXPECT_DOUBLE_EQ(SpeedFingerprintAttack::Accuracy({}), 0.0);
}

TEST(SpeedFingerprint, MostlyFailsAgainstTheMechanismAtScale) {
  // The residual-leakage question: published constant speeds of a real
  // population overlap heavily, so linkage should stay far below the POI
  // attack's raw accuracy (~0.7). This guards against the mechanism
  // accidentally making speeds MORE identifying.
  synth::PopulationConfig config;
  config.agents = 20;
  config.days = 2;
  config.seed = 321;
  const synth::SyntheticWorld world(config);
  const mech::SpeedSmoothing mechanism;
  util::Rng rng(1);
  const model::Dataset train =
      mechanism.Apply(world.DatasetForDays({0}), rng);
  const model::Dataset test =
      mechanism.Apply(world.DatasetForDays({1}), rng);
  const SpeedFingerprintAttack attack;
  const auto results = attack.Attack(attack.BuildProfiles(train), test);
  ASSERT_FALSE(results.empty());
  EXPECT_LT(SpeedFingerprintAttack::Accuracy(results), 0.4);
}

}  // namespace
}  // namespace mobipriv::attacks
