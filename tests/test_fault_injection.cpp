// Failure-domain tests: the fault matrix (every registered injection
// point driven in fail-once mode — no crash, no torn file), atomic-commit
// torn-write protection, OpenShards quarantine, cache-read retry, and the
// engine's graceful degradation (deterministic error rows at any thread
// count, watchdog containment).
#include "util/fault.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scenario.h"
#include "core/shard_exec.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;
namespace fault = util::fault;

/// Small shared world (built once; tests treat it as read-only).
const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 8;
    config.days = 1;
    config.seed = 99;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

/// Fresh scratch directory per test (removed on destruction).
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("mobipriv_fault_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

/// RAII teardown: no test leaks an armed point into the next.
struct DisarmGuard {
  ~DisarmGuard() { fault::DisarmAll(); }
};

fault::Config FailTimes(std::uint64_t times, std::string key_filter = {}) {
  fault::Config config;
  config.mode = fault::Mode::kFailTimes;
  config.times = times;
  config.key_filter = std::move(key_filter);
  return config;
}

fault::Config ShortIo(std::size_t bytes) {
  fault::Config config;
  config.mode = fault::Mode::kShortIo;
  config.bytes = bytes;
  return config;
}

fault::Config Delay(std::uint64_t delay_ms, std::string key_filter = {}) {
  fault::Config config;
  config.mode = fault::Mode::kDelay;
  config.delay_ms = delay_ms;
  config.key_filter = std::move(key_filter);
  return config;
}

core::ScenarioSpec EngineSpec(const std::string& cache_dir = {}) {
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  spec.mechanisms = {"identity", "cloaking", "geo_ind[eps=0.01]"};
  spec.evaluators = {"coverage", "spatial_distortion"};
  spec.seeds = {7};
  spec.threads = 1;
  spec.mechanism_cache_dir = cache_dir;
  return spec;
}

// ---- The fault matrix -------------------------------------------------------

/// Drives every persistence and engine path once, swallowing failures per
/// stage (a failing stage must not stop later stages from being driven).
void DriveAllSites(const fs::path& dir) {
  const auto guarded = [](auto&& stage) {
    try {
      stage();
    } catch (const std::exception&) {
      // Expected: the armed point failed this stage. Containment is the
      // assertion (no crash, no torn file), not success.
    }
  };

  const model::EventStore store = model::EventStore::FromDataset(World());
  const fs::path mpc = dir / "x.mpc";
  guarded([&] { model::WriteColumnar(store, mpc.string()); });
  guarded([&] { (void)model::ReadColumnar(mpc.string()); });
  guarded([&] { (void)model::MapColumnar(mpc.string()); });

  const fs::path shards = dir / "shards";
  guarded([&] {
    model::ShardedDataset::Partition(World(), 2).SaveShards(shards.string());
  });
  guarded([&] {
    (void)model::ShardedDataset::OpenShards(shards.string());
  });

  const fs::path csv = dir / "x.csv";
  guarded([&] { model::SaveDataset(World(), csv.string()); });
  guarded([&] { (void)model::ReadCsvFile(csv.string()); });

  // Cold engine run spills the cache, warm run reads it back; both runs
  // degrade gracefully whatever node the armed point kills.
  const std::string cache = (dir / "cache").string();
  guarded([&] { (void)core::RunScenario(EngineSpec(cache)); });
  guarded([&] { (void)core::RunScenario(EngineSpec(cache)); });

  // Multi-process path: a supervised-worker run over the shard dir (the
  // engine falls back in-process when the worker binary is absent). This
  // is what reaches the supervisor-side result validation point; the
  // worker-process-side points evaluate in the CHILD processes and are
  // driven for real by test_shard_exec.cpp.
  guarded([&] {
    core::ScenarioSpec spec;
    spec.source = core::DatasetSourceSpec::ShardDir(shards.string());
    spec.mechanisms = {"gaussian"};
    spec.evaluators = {"trajectory_stats"};
    spec.seeds = {7};
    spec.threads = 1;
    spec.workers = 1;
    (void)core::RunScenario(std::move(spec));
  });
}

/// Every published `.mpc` in `dir` must read back clean — the atomic
/// commit protocol's promise: a final path is never torn, whatever fault
/// fired during the run.
void ExpectNoTornColumnarFiles(const fs::path& dir) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    EXPECT_NE(p.extension(), ".tmp") << "stray temp file: " << p;
    if (p.extension() != ".mpc") continue;
    EXPECT_NO_THROW((void)model::ReadColumnar(p.string()))
        << "torn columnar file survived: " << p;
  }
}

TEST(FaultMatrix, EveryPointFailOnceIsContained) {
  DisarmGuard guard;
  for (const std::string_view point : fault::AllPoints()) {
    SCOPED_TRACE(std::string(point));
    ScratchDir scratch("matrix_" + std::string(point));
    fault::DisarmAll();
    fault::Arm(point, FailTimes(1));
    DriveAllSites(scratch.path);
    // The worker.* points evaluate inside fork/exec'd worker PROCESSES
    // and can only be armed there via the MOBIPRIV_FAULTS environment —
    // programmatic arming here never reaches them (test_shard_exec.cpp
    // drives them for real). The supervisor-side validation point needs
    // the worker binary next to this test executable to be reached.
    const bool worker_process_side =
        point == fault::points::kWorkerApply ||
        point == fault::points::kWorkerResultWrite;
    const bool needs_worker_binary =
        point == fault::points::kSupervisorResultValidate &&
        core::DefaultWorkerBinary().empty();
    if (!worker_process_side && !needs_worker_binary) {
      EXPECT_GE(fault::TripCount(point), 1u)
          << "injection point was never reached by the drive";
    }
    fault::DisarmAll();
    ExpectNoTornColumnarFiles(scratch.path);
  }
}

TEST(FaultMatrix, ShortIoTearsTempNeverFinal) {
  DisarmGuard guard;
  ScratchDir scratch("short");
  const model::EventStore store = model::EventStore::FromDataset(World());
  const fs::path mpc = scratch.path / "x.mpc";

  // Publish a healthy version first, then tear an overwrite attempt.
  model::WriteColumnar(store, mpc.string());
  const auto healthy_size = fs::file_size(mpc);

  fault::Arm(fault::points::kColumnarWriteShort, ShortIo(64));
  EXPECT_THROW(model::WriteColumnar(store, mpc.string()), model::IoError);
  fault::DisarmAll();

  // Old content intact, byte for byte; the torn prefix never took the name.
  EXPECT_EQ(fs::file_size(mpc), healthy_size);
  EXPECT_NO_THROW((void)model::ReadColumnar(mpc.string()));
  ExpectNoTornColumnarFiles(scratch.path);
}

TEST(FaultMatrix, CommitFaultLeavesNoTempBehind) {
  DisarmGuard guard;
  ScratchDir scratch("commit");
  const model::EventStore store = model::EventStore::FromDataset(World());
  const fs::path mpc = scratch.path / "x.mpc";

  fault::Arm(fault::points::kColumnarWriteCommit, FailTimes(1));
  EXPECT_THROW(model::WriteColumnar(store, mpc.string()), model::IoError);
  fault::DisarmAll();

  EXPECT_FALSE(fs::exists(mpc));
  EXPECT_TRUE(fs::is_empty(scratch.path)) << "temp file leaked";

  // The budget is spent: the retry succeeds and publishes clean.
  model::WriteColumnar(store, mpc.string());
  EXPECT_NO_THROW((void)model::ReadColumnar(mpc.string()));
}

TEST(FaultMatrix, TruncatedMapOpenThrowsCleanly) {
  // A physically truncated file must be a clean IoError from MapColumnar
  // — never a SIGBUS later when section pointers are dereferenced.
  ScratchDir scratch("truncate");
  const fs::path mpc = scratch.path / "x.mpc";
  model::WriteColumnar(model::EventStore::FromDataset(World()),
                       mpc.string());
  fs::resize_file(mpc, fs::file_size(mpc) / 2);
  EXPECT_THROW((void)model::MapColumnar(mpc.string()), model::IoError);
  EXPECT_THROW((void)model::ReadColumnar(mpc.string()), model::IoError);
}

// ---- Env-spec grammar -------------------------------------------------------

TEST(FaultSpec, ArmFromSpecGrammar) {
  DisarmGuard guard;
  EXPECT_EQ(fault::ArmFromSpec(
                "columnar.write.open=once;cache.read.load=times:3;"
                "csv.read.short=short:16;engine.mechanism.run=delay:1;"
                "manifest.read.open=p:0.5@7"),
            5u);
  // once => fail exactly the first evaluation.
  EXPECT_TRUE(fault::Evaluate(fault::points::kColumnarWriteOpen).fail);
  EXPECT_FALSE(fault::Evaluate(fault::points::kColumnarWriteOpen).fail);
  // short:16 => fail with a 16-byte I/O cap.
  const fault::Decision d =
      fault::Evaluate(fault::points::kCsvReadShort);
  EXPECT_TRUE(d.fail);
  EXPECT_EQ(d.io_cap, 16u);
  // delay never fails.
  EXPECT_FALSE(fault::Evaluate(fault::points::kEngineMechanismRun).fail);
  fault::DisarmAll();

  EXPECT_THROW(fault::ArmFromSpec("nonsense"), std::invalid_argument);
  EXPECT_THROW(fault::ArmFromSpec("x=unknownmode"), std::invalid_argument);
  EXPECT_THROW(fault::ArmFromSpec("x=times:"), std::invalid_argument);
  EXPECT_THROW(fault::ArmFromSpec("x=p:1.5"), std::invalid_argument);
  fault::DisarmAll();
}

TEST(FaultSpec, DisabledPathIsInert) {
  ASSERT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::Evaluate(fault::points::kColumnarWriteOpen).fail);
  EXPECT_EQ(fault::TripCount(fault::points::kColumnarWriteOpen), 0u);
}

// ---- OpenShards quarantine --------------------------------------------------

TEST(Quarantine, SkipCorruptLoadsTheSurvivors) {
  DisarmGuard guard;
  ScratchDir scratch("quarantine");
  model::ShardedDataset::Partition(World(), 3)
      .SaveShards(scratch.path.string());

  const fault::Config bad_shard = FailTimes(1000, "shard-00001.mpc");

  // Default policy: fail fast, exactly as before the quarantine existed.
  fault::Arm(fault::points::kShardOpenRead, bad_shard);
  EXPECT_THROW((void)model::ShardedDataset::OpenShards(scratch.path.string()),
               model::IoError);

  // kSkipCorrupt: the two healthy shards load, the bad one is recorded.
  model::ShardedDataset::OpenReport report;
  const model::ShardedDataset opened = model::ShardedDataset::OpenShards(
      scratch.path.string(),
      model::ShardedDataset::OpenPolicy::kSkipCorrupt, &report);
  fault::DisarmAll();

  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.skipped_shards.size(), 1u);
  EXPECT_EQ(report.skipped_shards[0], 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("injected fault"), std::string::npos);
  EXPECT_EQ(opened.ShardCount(), 3u);
  EXPECT_EQ(opened.shard(1).TraceCount(), 0u);  // quarantined: empty
  EXPECT_GT(opened.shard(0).TraceCount() + opened.shard(2).TraceCount(), 0u);
  // The survivors still merge (concatenation order, no origin replay).
  EXPECT_GT(opened.Merge().TraceCount(), 0u);

  // Healthy directory: kSkipCorrupt behaves exactly like the default.
  model::ShardedDataset::OpenReport clean;
  const model::ShardedDataset full = model::ShardedDataset::OpenShards(
      scratch.path.string(),
      model::ShardedDataset::OpenPolicy::kSkipCorrupt, &clean);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(full.Merge().TraceCount(), World().TraceCount());
}

// ---- Engine graceful degradation --------------------------------------------

TEST(Degradation, FailedMechanismDegradesDeterministically) {
  DisarmGuard guard;
  const std::string victim = "cloaking[cell=250m]";

  const auto run_degraded = [&](std::size_t threads) {
    fault::Arm(fault::points::kEngineMechanismRun, FailTimes(1000, victim));
    core::ScenarioSpec spec = EngineSpec();
    spec.threads = threads;
    core::ScenarioEngine engine(spec);
    const core::Report report = engine.Run();
    fault::DisarmAll();
    EXPECT_EQ(engine.stats().failed_nodes, 1u);
    EXPECT_EQ(engine.stats().skipped_nodes, 2u);  // its two evaluator nodes
    return report;
  };

  const core::Report serial = run_degraded(1);
  EXPECT_FALSE(serial.AllOk());

  // One failed mechanism row, its evaluator cells skipped, everything
  // else scored normally.
  std::size_t failed = 0, skipped = 0, ok = 0;
  for (const core::ReportRow& row : serial.rows()) {
    switch (row.status) {
      case core::RowStatus::kFailed:
        ++failed;
        EXPECT_EQ(row.mechanism, victim);
        EXPECT_EQ(row.evaluator, "");
        EXPECT_NE(row.error.find("injected fault"), std::string::npos);
        break;
      case core::RowStatus::kSkipped:
        ++skipped;
        EXPECT_EQ(row.mechanism, victim);
        EXPECT_NE(row.evaluator, "");
        EXPECT_NE(row.error.find("dependency failed"), std::string::npos);
        break;
      case core::RowStatus::kOk:
        ++ok;
        EXPECT_NE(row.mechanism, victim);
        break;
    }
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_GT(ok, 0u);

  // The acceptance bar: byte-identical degraded reports at any thread
  // count, error rows included.
  const core::Report parallel = run_degraded(4);
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());

  // Pivot never renders degraded cells.
  EXPECT_EQ(serial.Pivot("coverage").ToCsv().find(victim),
            std::string::npos);
}

TEST(Degradation, FailedEvaluatorKeepsSiblingCells) {
  DisarmGuard guard;
  fault::Arm(fault::points::kEngineEvaluatorRun,
             FailTimes(1000, "coverage[cell=200m]"));
  core::ScenarioEngine engine(EngineSpec());
  const core::Report report = engine.Run();
  fault::DisarmAll();

  EXPECT_EQ(engine.stats().failed_nodes, 3u);  // one per mechanism node
  EXPECT_EQ(engine.stats().skipped_nodes, 0u);
  for (const core::ReportRow& row : report.rows()) {
    if (row.evaluator == "coverage[cell=200m]") {
      EXPECT_EQ(row.status, core::RowStatus::kFailed);
      EXPECT_EQ(row.metric, "");
    } else {
      EXPECT_EQ(row.status, core::RowStatus::kOk);
    }
  }
}

TEST(Degradation, WatchdogContainsSlowNodes) {
  DisarmGuard guard;
  const auto run_with_watchdog = [&](std::size_t threads) {
    // The margin matters: the delayed node overshoots the limit 3x, real
    // nodes (milliseconds of work on this world) stay far under it — the
    // verdict is deterministic even on a loaded machine.
    fault::Arm(fault::points::kEngineMechanismRun, Delay(450, "identity"));
    core::ScenarioSpec spec = EngineSpec();
    spec.threads = threads;
    spec.node_timeout_ms = 150.0;
    const core::Report report = core::RunScenario(spec);
    fault::DisarmAll();
    return report;
  };

  const core::Report serial = run_with_watchdog(1);
  bool saw_timeout = false;
  for (const core::ReportRow& row : serial.rows()) {
    if (row.mechanism == "identity" &&
        row.status == core::RowStatus::kFailed) {
      saw_timeout = true;
      // The verdict carries the configured limit only — no measured
      // times, so the row is machine-independent.
      EXPECT_EQ(row.error, "node exceeded node_timeout (150 ms watchdog)");
    }
    if (row.mechanism != "identity") {
      EXPECT_EQ(row.status, core::RowStatus::kOk);
    }
  }
  EXPECT_TRUE(saw_timeout);
  EXPECT_EQ(serial.ToCsv(), run_with_watchdog(4).ToCsv());
}

TEST(Degradation, CacheReadRetriesAbsorbTransients) {
  DisarmGuard guard;
  ScratchDir scratch("retry");
  const std::string cache = scratch.path.string();

  // Warm the cache, pin the healthy report.
  const core::Report baseline = core::RunScenario(EngineSpec(cache));
  ASSERT_TRUE(baseline.AllOk());

  // Two transient failures: absorbed by the retry budget — every node
  // still HITS the cache and the report is unchanged.
  fault::Arm(fault::points::kCacheReadLoad, FailTimes(2));
  core::ScenarioEngine transient(EngineSpec(cache));
  const core::Report absorbed = transient.Run();
  fault::DisarmAll();
  EXPECT_TRUE(absorbed.AllOk());
  EXPECT_EQ(absorbed.ToCsv(), baseline.ToCsv());
  EXPECT_EQ(transient.stats().cache_read_retries, 2u);
  EXPECT_EQ(transient.stats().cache_hits, 3u);
  EXPECT_EQ(transient.stats().cache_misses, 0u);

  // Persistent failure: the budget runs out, the cache degrades to a
  // miss and the engine recomputes — never a run failure.
  fault::Arm(fault::points::kCacheReadLoad, FailTimes(1000000));
  core::ScenarioEngine persistent(EngineSpec(cache));
  const core::Report recomputed = persistent.Run();
  fault::DisarmAll();
  EXPECT_TRUE(recomputed.AllOk());
  EXPECT_EQ(recomputed.ToCsv(), baseline.ToCsv());
  EXPECT_EQ(persistent.stats().cache_hits, 0u);
  EXPECT_EQ(persistent.stats().cache_misses, 3u);
}

TEST(Degradation, HealthyRunReportsAllOk) {
  const core::Report report = core::RunScenario(EngineSpec());
  EXPECT_TRUE(report.AllOk());
  for (const core::ReportRow& row : report.rows()) {
    EXPECT_EQ(row.status, core::RowStatus::kOk);
    EXPECT_TRUE(row.error.empty());
  }
  // The long-form table is self-describing about health.
  const std::string csv = report.ToCsv();
  EXPECT_NE(csv.find("status,error"), std::string::npos);
  EXPECT_NE(csv.find(",ok,"), std::string::npos);
}

}  // namespace
}  // namespace mobipriv
