// Property suite over EVERY publication mechanism in the standard roster:
// invariants that must hold for any Mechanism implementation, present and
// future. Parameterized on the roster index so a failure names the exact
// mechanism.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "synth/population.h"

namespace mobipriv::mech {
namespace {

model::Dataset SharedInput() {
  synth::PopulationConfig config;
  config.agents = 6;
  config.days = 1;
  config.seed = 555;
  static const model::Dataset dataset = [&] {
    const synth::SyntheticWorld world(config);
    return world.dataset().Clone();
  }();
  return dataset.Clone();
}

class MechanismProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  MechanismProperty() : roster_(core::StandardRoster({0.01, 0.1})) {}
  Mechanism& mechanism() { return *roster_.at(GetParam()); }

 private:
  std::vector<std::unique_ptr<Mechanism>> roster_;
};

TEST_P(MechanismProperty, DeterministicGivenRngSeed) {
  const model::Dataset input = SharedInput();
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const model::Dataset a = mechanism().Apply(input, rng_a);
  const model::Dataset b = mechanism().Apply(input, rng_b);
  ASSERT_EQ(a.TraceCount(), b.TraceCount()) << mechanism().Name();
  ASSERT_EQ(a.EventCount(), b.EventCount()) << mechanism().Name();
  for (std::size_t i = 0; i < a.TraceCount(); ++i) {
    ASSERT_EQ(a.traces()[i].size(), b.traces()[i].size());
    EXPECT_EQ(a.traces()[i].user(), b.traces()[i].user());
    for (std::size_t j = 0; j < a.traces()[i].size(); ++j) {
      EXPECT_EQ(a.traces()[i][j], b.traces()[i][j]) << mechanism().Name();
    }
  }
}

TEST_P(MechanismProperty, DoesNotMutateInput) {
  const model::Dataset input = SharedInput();
  const model::Dataset reference = SharedInput();
  util::Rng rng(3);
  (void)mechanism().Apply(input, rng);
  ASSERT_EQ(input.TraceCount(), reference.TraceCount());
  ASSERT_EQ(input.EventCount(), reference.EventCount());
  for (std::size_t i = 0; i < input.TraceCount(); ++i) {
    for (std::size_t j = 0; j < input.traces()[i].size(); ++j) {
      ASSERT_EQ(input.traces()[i][j], reference.traces()[i][j])
          << mechanism().Name() << " mutated its input";
    }
  }
}

TEST_P(MechanismProperty, OutputUsersWithinInputIdSpace) {
  const model::Dataset input = SharedInput();
  util::Rng rng(5);
  const model::Dataset output = mechanism().Apply(input, rng);
  for (const auto& trace : output.traces()) {
    EXPECT_LT(trace.user(), input.UserCount()) << mechanism().Name();
  }
}

TEST_P(MechanismProperty, OutputTracesTimeOrderedAndNonEmpty) {
  const model::Dataset input = SharedInput();
  util::Rng rng(7);
  const model::Dataset output = mechanism().Apply(input, rng);
  for (const auto& trace : output.traces()) {
    EXPECT_FALSE(trace.empty()) << mechanism().Name();
    EXPECT_TRUE(trace.IsTimeOrdered()) << mechanism().Name();
  }
}

TEST_P(MechanismProperty, OutputCoordinatesValid) {
  const model::Dataset input = SharedInput();
  util::Rng rng(11);
  const model::Dataset output = mechanism().Apply(input, rng);
  for (const auto& trace : output.traces()) {
    for (const auto& event : trace) {
      EXPECT_TRUE(event.position.IsValid())
          << mechanism().Name() << " produced " << event.position.ToString();
    }
  }
}

TEST_P(MechanismProperty, EmptyDatasetYieldsEmptyOutput) {
  util::Rng rng(13);
  const model::Dataset output = mechanism().Apply(model::Dataset{}, rng);
  EXPECT_EQ(output.EventCount(), 0u) << mechanism().Name();
}

TEST_P(MechanismProperty, NameIsStableAndNonEmpty) {
  EXPECT_FALSE(mechanism().Name().empty());
  EXPECT_EQ(mechanism().Name(), mechanism().Name());
}

TEST_P(MechanismProperty, NeverInventsEvents) {
  // No mechanism in this library fabricates more events than a bounded
  // factor of the input (resampling can add interpolated points, bounded
  // by path-length/spacing; everything else only perturbs or removes).
  const model::Dataset input = SharedInput();
  util::Rng rng(17);
  const model::Dataset output = mechanism().Apply(input, rng);
  EXPECT_LE(output.EventCount(), input.EventCount() * 4)
      << mechanism().Name();
}

INSTANTIATE_TEST_SUITE_P(
    StandardRoster, MechanismProperty,
    ::testing::Range<std::size_t>(0, 10),  // roster size with 2 epsilons
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      // Stable, name-safe label: the roster index plus sanitized name.
      const auto roster = core::StandardRoster({0.01, 0.1});
      std::string name = roster.at(info.param)->Name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return std::to_string(info.param) + "_" + name;
    });

}  // namespace
}  // namespace mobipriv::mech
