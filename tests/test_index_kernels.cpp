// Equivalence tests for the spatial-index-backed kernels: every grid-backed
// fast path (nearest-neighbour profile distance, grid-merged POI clustering,
// the incremental stay-point window, the allocation-free query overloads)
// must produce exactly the results of its brute-force reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "geo/grid_index.h"
#include "util/rng.h"

namespace mobipriv {
namespace {

std::vector<geo::Point2> RandomPoints(util::Rng& rng, std::size_t n,
                                      double extent) {
  std::vector<geo::Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(-extent, extent),
                      rng.Uniform(-extent, extent)});
  }
  return points;
}

// ---- GridIndex primitives --------------------------------------------------

TEST(GridIndexKernels, QueryNearestMatchesBruteForce) {
  util::Rng rng(11);
  for (const double cell : {25.0, 100.0, 700.0}) {
    geo::GridIndex index(cell);
    const auto points = RandomPoints(rng, 300, 5000.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      index.Insert(points[i], i);
    }
    for (int probe = 0; probe < 200; ++probe) {
      // Mix near-cloud and far-outside query points.
      const double extent = probe % 3 == 0 ? 50000.0 : 5000.0;
      const geo::Point2 q{rng.Uniform(-extent, extent),
                          rng.Uniform(-extent, extent)};
      double best_sq = std::numeric_limits<double>::infinity();
      std::uint64_t best_id = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const double d_sq = geo::DistanceSquared(points[i], q);
        if (d_sq < best_sq || (d_sq == best_sq && i < best_id)) {
          best_sq = d_sq;
          best_id = i;
        }
      }
      const auto nearest = index.QueryNearest(q);
      ASSERT_TRUE(nearest.has_value());
      EXPECT_EQ(nearest->id, best_id) << "cell=" << cell;
      EXPECT_DOUBLE_EQ(nearest->distance, std::sqrt(best_sq));
    }
  }
}

TEST(GridIndexKernels, QueryNearestEmptyIndex) {
  const geo::GridIndex index(100.0);
  EXPECT_FALSE(index.QueryNearest({0.0, 0.0}).has_value());
}

TEST(GridIndexKernels, BufferOverloadsMatchAllocatingOverloads) {
  util::Rng rng(12);
  geo::GridIndex index(80.0);
  const auto points = RandomPoints(rng, 400, 2000.0);
  for (std::size_t i = 0; i < points.size(); ++i) index.Insert(points[i], i);

  std::vector<std::uint64_t> radius_buffer;
  std::vector<std::pair<std::uint64_t, geo::Point2>> box_buffer;
  for (int probe = 0; probe < 100; ++probe) {
    const geo::Point2 q{rng.Uniform(-2000.0, 2000.0),
                        rng.Uniform(-2000.0, 2000.0)};
    const double radius = rng.Uniform(0.0, 500.0);
    index.QueryRadius(q, radius, radius_buffer);
    EXPECT_EQ(radius_buffer, index.QueryRadius(q, radius));
    index.QueryBoxCandidates(q, radius, box_buffer);
    const auto box = index.QueryBoxCandidates(q, radius);
    ASSERT_EQ(box_buffer.size(), box.size());
    for (std::size_t i = 0; i < box.size(); ++i) {
      EXPECT_EQ(box_buffer[i].first, box[i].first);
      EXPECT_EQ(box_buffer[i].second, box[i].second);
    }
  }
}

TEST(GridIndexKernels, RemoveAndMoveKeepQueriesExact) {
  geo::GridIndex index(100.0);
  index.Insert({10.0, 10.0}, 1);
  index.Insert({20.0, 20.0}, 2);
  index.Insert({30.0, 30.0}, 3);
  ASSERT_EQ(index.Size(), 3u);

  // Remove the middle entry; wrong point or id must not match.
  EXPECT_FALSE(index.Remove({20.0, 20.1}, 2));
  EXPECT_FALSE(index.Remove({20.0, 20.0}, 9));
  EXPECT_TRUE(index.Remove({20.0, 20.0}, 2));
  EXPECT_EQ(index.Size(), 2u);
  auto hits = index.QueryRadius({20.0, 20.0}, 50.0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{1, 3}));

  // Move id 3 across cells; it must be findable only at the new position.
  EXPECT_TRUE(index.Move({30.0, 30.0}, {950.0, 950.0}, 3));
  EXPECT_TRUE(index.QueryRadius({30.0, 30.0}, 5.0).empty());
  EXPECT_EQ(index.QueryRadius({950.0, 950.0}, 5.0),
            (std::vector<std::uint64_t>{3}));
  // Same-cell move.
  EXPECT_TRUE(index.Move({950.0, 950.0}, {955.0, 955.0}, 3));
  EXPECT_EQ(index.QueryRadius({955.0, 955.0}, 1.0),
            (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(index.Size(), 2u);

  // Slot recycling: a fresh insert reuses the removed slot transparently.
  index.Insert({-500.0, -500.0}, 4);
  EXPECT_EQ(index.Size(), 3u);
  EXPECT_EQ(index.QueryRadius({-500.0, -500.0}, 1.0),
            (std::vector<std::uint64_t>{4}));
}

TEST(GridIndexKernels, RandomizedRemoveMatchesBruteForce) {
  util::Rng rng(13);
  geo::GridIndex index(60.0);
  auto points = RandomPoints(rng, 200, 1000.0);
  std::vector<bool> alive(points.size(), true);
  for (std::size_t i = 0; i < points.size(); ++i) index.Insert(points[i], i);
  // Remove half at random, then compare radius queries to brute force.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(index.Remove(points[i], i));
      alive[i] = false;
    }
  }
  for (int probe = 0; probe < 100; ++probe) {
    const geo::Point2 q{rng.Uniform(-1000.0, 1000.0),
                        rng.Uniform(-1000.0, 1000.0)};
    const double radius = rng.Uniform(0.0, 300.0);
    std::vector<std::uint64_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (alive[i] && geo::DistanceSquared(points[i], q) <= radius * radius) {
        expected.push_back(i);
      }
    }
    auto got = index.QueryRadius(q, radius);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

// ---- Re-identification profile distance ------------------------------------

/// The seed's brute-force directed mean-nearest distance.
double BruteDirectedMeanNearest(const std::vector<geo::Point2>& from,
                                const std::vector<double>& from_weights,
                                const std::vector<geo::Point2>& to) {
  if (from.empty() || to.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& q : to) best = std::min(best, geo::Distance(from[i], q));
    const double w = from_weights.empty() ? 1.0 : from_weights[i];
    weighted_sum += best * w;
    total_weight += w;
  }
  return total_weight > 0.0 ? weighted_sum / total_weight
                            : std::numeric_limits<double>::infinity();
}

double BruteProfileDistance(const attacks::MobilityProfile& a,
                            const attacks::MobilityProfile& b) {
  return 0.5 * (BruteDirectedMeanNearest(a.pois, a.weights, b.pois) +
                BruteDirectedMeanNearest(b.pois, b.weights, a.pois));
}

attacks::MobilityProfile RandomProfile(util::Rng& rng, model::UserId user,
                                       std::size_t pois) {
  attacks::MobilityProfile profile;
  profile.user = user;
  profile.pois = RandomPoints(rng, pois, 20000.0);
  for (std::size_t i = 0; i < pois; ++i) {
    profile.weights.push_back(rng.Uniform(60.0, 7200.0));
  }
  return profile;
}

TEST(ReidentKernels, ProfileDistanceMatchesBruteForce) {
  util::Rng rng(21);
  // Sizes straddling the index threshold, including asymmetric pairs.
  for (const auto& [na, nb] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {3, 40}, {40, 3}, {64, 64}, {200, 150}}) {
    const auto a = RandomProfile(rng, 0, na);
    const auto b = RandomProfile(rng, 1, nb);
    const double fast = attacks::ReidentificationAttack::ProfileDistance(a, b);
    const double brute = BruteProfileDistance(a, b);
    EXPECT_DOUBLE_EQ(fast, brute) << "sizes " << na << " x " << nb;
    // Symmetry is part of the contract.
    EXPECT_DOUBLE_EQ(attacks::ReidentificationAttack::ProfileDistance(b, a),
                     fast);
  }
}

TEST(ReidentKernels, EmptyProfileIsInfinitelyFar) {
  util::Rng rng(22);
  const auto a = RandomProfile(rng, 0, 30);
  attacks::MobilityProfile empty;
  EXPECT_TRUE(std::isinf(
      attacks::ReidentificationAttack::ProfileDistance(a, empty)));
}

// ---- POI extraction --------------------------------------------------------

/// The seed's stay-point scan: per-anchor rescan, no skip logic.
std::vector<attacks::StayPoint> BruteExtractStays(
    const model::Trace& trace, const geo::LocalProjection& projection,
    const attacks::PoiExtractionConfig& config) {
  std::vector<attacks::StayPoint> stays;
  const std::size_t n = trace.size();
  if (n == 0) return stays;
  std::vector<geo::Point2> points;
  points.reserve(n);
  for (const auto& event : trace) {
    points.push_back(projection.Project(event.position));
  }
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n &&
           geo::Distance(points[i], points[j]) <= config.max_diameter_m) {
      ++j;
    }
    const util::Timestamp dwell = trace[j - 1].time - trace[i].time;
    if (dwell >= config.min_duration_s) {
      geo::Point2 centroid{};
      for (std::size_t k = i; k < j; ++k) centroid = centroid + points[k];
      centroid = centroid / static_cast<double>(j - i);
      stays.push_back(attacks::StayPoint{trace.user(), centroid, trace[i].time,
                                         trace[j - 1].time, j - i});
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

/// A jittery random walk with embedded dwells — adversarial for the
/// incremental window (dense sub-threshold dwells, overlapping runs).
model::Trace RandomWalkTrace(util::Rng& rng, std::size_t fixes) {
  model::Trace trace;
  trace.set_user(0);
  geo::Point2 at{0.0, 0.0};
  util::Timestamp t = 1433116800;
  for (std::size_t i = 0; i < fixes; ++i) {
    if (rng.Bernoulli(0.15)) {
      // Dwell burst: many fixes jittering in place; duration randomized
      // around the stay threshold so both outcomes occur.
      const std::size_t burst = 5 + rng.NextBounded(40);
      for (std::size_t k = 0; k < burst; ++k) {
        trace.Append(model::Event{
            geo::LatLng{at.y / 111320.0, at.x / 111320.0}, t});
        at = at + geo::Point2{rng.Uniform(-20.0, 20.0),
                              rng.Uniform(-20.0, 20.0)};
        t += 20 + static_cast<util::Timestamp>(rng.NextBounded(60));
      }
    } else {
      trace.Append(model::Event{
          geo::LatLng{at.y / 111320.0, at.x / 111320.0}, t});
      at = at + geo::Point2{rng.Uniform(-400.0, 400.0),
                            rng.Uniform(-400.0, 400.0)};
      t += 30 + static_cast<util::Timestamp>(rng.NextBounded(120));
    }
  }
  return trace;
}

TEST(PoiKernels, IncrementalStayScanMatchesBruteForce) {
  util::Rng rng(31);
  const geo::LocalProjection projection(geo::LatLng{0.0, 0.0});
  attacks::PoiExtractionConfig config;
  config.max_diameter_m = 150.0;
  config.min_duration_s = 10 * 60;
  const attacks::PoiExtractor extractor(config);
  for (int round = 0; round < 30; ++round) {
    const model::Trace trace = RandomWalkTrace(rng, 60);
    const auto fast = extractor.ExtractStays(trace, projection);
    const auto brute = BruteExtractStays(trace, projection, config);
    ASSERT_EQ(fast.size(), brute.size()) << "round " << round;
    for (std::size_t s = 0; s < fast.size(); ++s) {
      EXPECT_EQ(fast[s].centroid.x, brute[s].centroid.x);
      EXPECT_EQ(fast[s].centroid.y, brute[s].centroid.y);
      EXPECT_EQ(fast[s].arrival, brute[s].arrival);
      EXPECT_EQ(fast[s].departure, brute[s].departure);
      EXPECT_EQ(fast[s].support, brute[s].support);
    }
  }
}

/// The seed's greedy first-fit clustering over a user's stays.
std::vector<attacks::ExtractedPoi> BruteClusterStays(
    model::UserId user, std::vector<attacks::StayPoint> stays,
    double merge_radius_m) {
  std::sort(stays.begin(), stays.end(),
            [](const attacks::StayPoint& a, const attacks::StayPoint& b) {
              return (a.departure - a.arrival) > (b.departure - b.arrival);
            });
  struct Cluster {
    geo::Point2 weighted_sum{};
    double weight = 0.0;
    std::size_t visits = 0;
    util::Timestamp dwell = 0;
    geo::Point2 Centroid() const { return weighted_sum / weight; }
  };
  std::vector<Cluster> clusters;
  for (const attacks::StayPoint& stay : stays) {
    const double w = static_cast<double>(stay.support);
    Cluster* target = nullptr;
    for (auto& cluster : clusters) {
      if (geo::Distance(cluster.Centroid(), stay.centroid) <= merge_radius_m) {
        target = &cluster;
        break;
      }
    }
    if (target == nullptr) {
      clusters.emplace_back();
      target = &clusters.back();
    }
    target->weighted_sum = target->weighted_sum + stay.centroid * w;
    target->weight += w;
    target->visits += 1;
    target->dwell += stay.departure - stay.arrival;
  }
  std::vector<attacks::ExtractedPoi> pois;
  for (const auto& cluster : clusters) {
    pois.push_back(attacks::ExtractedPoi{user, cluster.Centroid(),
                                         cluster.visits, cluster.dwell});
  }
  return pois;
}

TEST(PoiKernels, GridClusteringMatchesBruteForce) {
  util::Rng rng(32);
  const geo::LocalProjection projection(geo::LatLng{0.0, 0.0});
  attacks::PoiExtractionConfig config;
  config.max_diameter_m = 150.0;
  config.min_duration_s = 10 * 60;
  config.merge_radius_m = 120.0;
  const attacks::PoiExtractor extractor(config);

  // Multi-user dataset of dwell-heavy walks, long enough that each user
  // accumulates well over the cluster-count threshold at which the
  // clusterer switches from linear first-fit to the centroid grid — the
  // comparison therefore exercises the indexed path, not just the scan.
  model::Dataset dataset;
  for (int u = 0; u < 6; ++u) {
    model::Trace trace = RandomWalkTrace(rng, 400);
    dataset.AddTraceForUser("user" + std::to_string(u), trace.events());
  }

  const auto fast = extractor.Extract(dataset, projection);

  // Reference: pool brute stays per user, brute-cluster, in user order.
  std::map<model::UserId, std::vector<attacks::StayPoint>> by_user;
  for (const auto& trace : dataset.traces()) {
    for (auto& stay : BruteExtractStays(trace, projection, config)) {
      by_user[trace.user()].push_back(stay);
    }
  }
  std::vector<attacks::ExtractedPoi> brute;
  for (auto& [user, stays] : by_user) {
    for (auto& poi :
         BruteClusterStays(user, std::move(stays), config.merge_radius_m)) {
      brute.push_back(poi);
    }
  }

  // Guard against a vacuous pass: every user must have enough clusters
  // that the indexed path actually engaged (threshold is 32 in Extract).
  std::map<model::UserId, std::size_t> pois_per_user;
  for (const auto& poi : fast) ++pois_per_user[poi.user];
  for (const auto& [user, count] : pois_per_user) {
    ASSERT_GT(count, 32u) << "user " << user;
  }

  ASSERT_EQ(fast.size(), brute.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].user, brute[i].user);
    EXPECT_EQ(fast[i].centroid.x, brute[i].centroid.x);
    EXPECT_EQ(fast[i].centroid.y, brute[i].centroid.y);
    EXPECT_EQ(fast[i].visits, brute[i].visits);
    EXPECT_EQ(fast[i].total_dwell_s, brute[i].total_dwell_s);
  }
}

}  // namespace
}  // namespace mobipriv
