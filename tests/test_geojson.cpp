#include "model/geojson.h"

#include <gtest/gtest.h>

#include <sstream>

#include "synth/population.h"

namespace mobipriv::model {
namespace {

Dataset SmallDataset() {
  Dataset dataset;
  dataset.AddTraceForUser("alice", {{{45.764000, 4.835700}, 100},
                                    {{45.765000, 4.836000}, 200},
                                    {{45.766000, 4.836500}, 300}});
  dataset.AddTraceForUser("bob", {{{45.700000, 4.800000}, 150},
                                  {{45.701000, 4.801000}, 250}});
  return dataset;
}

TEST(GeoJson, LineStringStructure) {
  const std::string json = ToGeoJson(SmallDataset());
  EXPECT_NE(json.find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"user\":\"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"user\":\"bob\""), std::string::npos);
  // GeoJSON is [lng, lat]: longitude first.
  EXPECT_NE(json.find("[4.835700,45.764000]"), std::string::npos);
  EXPECT_NE(json.find("\"start\":100"), std::string::npos);
  EXPECT_NE(json.find("\"end\":300"), std::string::npos);
}

TEST(GeoJson, BalancedBracesAndBrackets) {
  GeoJsonOptions options;
  options.events_as_points = true;
  const std::string json = ToGeoJson(SmallDataset(), options);
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(GeoJson, PointsMode) {
  GeoJsonOptions options;
  options.traces_as_lines = false;
  options.events_as_points = true;
  const std::string json = ToGeoJson(SmallDataset(), options);
  EXPECT_EQ(json.find("LineString"), std::string::npos);
  // 5 events -> 5 Point features.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"type\":\"Point\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 5u);
}

TEST(GeoJson, OptionsSuppressProperties) {
  GeoJsonOptions options;
  options.include_user_names = false;
  options.include_timestamps = false;
  const std::string json = ToGeoJson(SmallDataset(), options);
  EXPECT_EQ(json.find("\"user\""), std::string::npos);
  EXPECT_EQ(json.find("\"start\""), std::string::npos);
}

TEST(GeoJson, EmptyDataset) {
  const std::string json = ToGeoJson(Dataset{});
  EXPECT_EQ(json, "{\"type\":\"FeatureCollection\",\"features\":[]}");
}

TEST(GeoJson, SingleEventTraceSkippedInLineMode) {
  Dataset dataset;
  dataset.AddTraceForUser("solo", {{{45.0, 4.0}, 1}});
  const std::string json = ToGeoJson(dataset);
  EXPECT_EQ(json.find("LineString"), std::string::npos);
}

TEST(JsonEscapeFn, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(GeoJson, ZonesAsPolygons) {
  const geo::LocalProjection projection({45.764, 4.8357});
  std::vector<mech::MixZoneInfo> zones(2);
  zones[0].center = {0.0, 0.0};
  zones[0].radius_m = 150.0;
  zones[0].occurrences = 3;
  zones[0].max_anonymity_set = 4;
  zones[1].center = {1000.0, 500.0};
  zones[1].radius_m = 80.0;
  std::ostringstream out;
  WriteZonesGeoJson(zones, projection, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"type\":\"Polygon\""), std::string::npos);
  EXPECT_NE(json.find("\"occurrences\":3"), std::string::npos);
  EXPECT_NE(json.find("\"max_anonymity_set\":4"), std::string::npos);
  int braces = 0;
  for (const char c : json) braces += (c == '{') - (c == '}');
  EXPECT_EQ(braces, 0);
}

TEST(GeoJson, PoiSites) {
  synth::PopulationConfig config;
  config.agents = 2;
  config.days = 1;
  config.seed = 5;
  const synth::SyntheticWorld world(config);
  std::ostringstream out;
  WritePoiSitesGeoJson(world.universe(), world.projection(), out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"category\":\"home\""), std::string::npos);
  EXPECT_NE(json.find("\"category\":\"transit_hub\""), std::string::npos);
}

}  // namespace
}  // namespace mobipriv::model
