// The engine's `.mpc` mechanism-output cache: spill on miss, reuse on hit,
// and — the safety property — NEVER reuse a stale or corrupt entry:
//   * a sidecar whose recorded fingerprint no longer matches the bound
//     source reads as stale -> recompute (and overwrite);
//   * a payload that fails its section checksums reads as corrupt ->
//     recompute cleanly;
// and the report is byte-identical in every case (cache off, cold, warm,
// stale, corrupt) — the cache is a performance knob, not a semantic one.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/scenario.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "synth/population.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 10;
    config.days = 1;
    config.seed = 555;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

struct CacheFixture : ::testing::Test {
  fs::path dir;
  std::string mpc;

  void SetUp() override {
    dir = fs::temp_directory_path() / "mobipriv_mech_cache";
    fs::remove_all(dir);
    fs::create_directories(dir);
    mpc = (dir / "world.mpc").string();
    model::WriteColumnar(model::EventStore::FromDataset(World()), mpc);
  }
  void TearDown() override { fs::remove_all(dir); }

  core::ScenarioSpec Spec() const {
    core::ScenarioSpec spec;
    spec.source = core::DatasetSourceSpec::ColumnarFile(mpc);
    spec.mechanisms = {"cloaking", "geo_ind[eps=0.05]"};
    spec.evaluators = {"coverage", "trajectory_stats"};
    spec.seeds = {3, 4};
    spec.mechanism_cache_dir = (dir / "cache").string();
    return spec;
  }

  std::vector<fs::path> CacheFiles(const std::string& extension) const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir / "cache")) {
      if (entry.path().extension() == extension) {
        files.push_back(entry.path());
      }
    }
    return files;
  }
};

TEST_F(CacheFixture, ColdMissesThenWarmHitsSameReport) {
  core::ScenarioEngine cold(Spec());
  const std::string cold_csv = cold.Run().ToCsv();
  EXPECT_EQ(cold.stats().cache_hits, 0u);
  EXPECT_EQ(cold.stats().cache_misses, 4u);  // 2 mechanisms x 2 seeds
  EXPECT_EQ(CacheFiles(".mpc").size(), 4u);
  EXPECT_EQ(CacheFiles(".key").size(), 4u);

  core::ScenarioEngine warm(Spec());
  const std::string warm_csv = warm.Run().ToCsv();
  EXPECT_EQ(warm.stats().cache_hits, 4u);
  EXPECT_EQ(warm.stats().cache_misses, 0u);
  EXPECT_EQ(cold_csv, warm_csv);

  // Cache off entirely: still the same report.
  core::ScenarioSpec uncached = Spec();
  uncached.mechanism_cache_dir.clear();
  core::ScenarioEngine off(uncached);
  EXPECT_EQ(off.Run().ToCsv(), cold_csv);
  EXPECT_EQ(off.stats().cache_hits + off.stats().cache_misses, 0u);
}

TEST_F(CacheFixture, StaleFingerprintRecomputesNeverReuses) {
  core::ScenarioEngine cold(Spec());
  const std::string cold_csv = cold.Run().ToCsv();

  // Tamper every sidecar's fingerprint line: the entries now claim to
  // describe a DIFFERENT dataset. The engine must treat them as stale.
  for (const fs::path& key_path : CacheFiles(".key")) {
    std::ifstream in(key_path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const auto at = text.find("fingerprint ");
    ASSERT_NE(at, std::string::npos);
    text[at + 12] = text[at + 12] == 'f' ? '0' : 'f';
    std::ofstream out(key_path, std::ios::binary | std::ios::trunc);
    out << text;
  }

  core::ScenarioEngine stale(Spec());
  const std::string stale_csv = stale.Run().ToCsv();
  EXPECT_EQ(stale.stats().cache_hits, 0u) << "stale entry was reused";
  EXPECT_EQ(stale.stats().cache_misses, 4u);
  EXPECT_EQ(stale_csv, cold_csv);

  // The recompute overwrote the entries: the cache is healthy again.
  core::ScenarioEngine repaired(Spec());
  (void)repaired.Run();
  EXPECT_EQ(repaired.stats().cache_hits, 4u);
}

TEST_F(CacheFixture, CorruptPayloadRecomputesCleanly) {
  core::ScenarioEngine cold(Spec());
  const std::string cold_csv = cold.Run().ToCsv();

  // Flip bytes in the middle of every cached payload (past the header, in
  // column data): the section checksums must catch it.
  for (const fs::path& mpc_path : CacheFiles(".mpc")) {
    std::fstream file(mpc_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(fs::file_size(mpc_path) / 2));
    const char garbage[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    file.write(garbage, sizeof(garbage));
  }

  core::ScenarioEngine corrupt(Spec());
  const std::string corrupt_csv = corrupt.Run().ToCsv();
  EXPECT_EQ(corrupt.stats().cache_hits, 0u) << "corrupt entry was reused";
  EXPECT_EQ(corrupt.stats().cache_misses, 4u);
  EXPECT_EQ(corrupt_csv, cold_csv);
}

TEST_F(CacheFixture, DifferentSeedsGetDistinctEntries) {
  core::ScenarioSpec spec = Spec();
  spec.seeds = {3};
  core::ScenarioEngine first(spec);
  (void)first.Run();
  EXPECT_EQ(first.stats().cache_misses, 2u);

  // A new seed shares nothing with seed 3's entries...
  spec.seeds = {4};
  core::ScenarioEngine second(spec);
  (void)second.Run();
  EXPECT_EQ(second.stats().cache_hits, 0u);
  EXPECT_EQ(second.stats().cache_misses, 2u);

  // ...and the union run hits both.
  spec.seeds = {3, 4};
  core::ScenarioEngine both(spec);
  (void)both.Run();
  EXPECT_EQ(both.stats().cache_hits, 4u);
}

}  // namespace
}  // namespace mobipriv
