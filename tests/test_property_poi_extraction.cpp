// Parameterized property sweep of the POI-extraction attack over its two
// thresholds: structural invariants of the returned stays and monotonicity
// of the detector in its parameters.
#include <gtest/gtest.h>

#include "attacks/poi_extraction.h"
#include "synth/population.h"

namespace mobipriv::attacks {
namespace {

const synth::SyntheticWorld& World() {
  static const synth::SyntheticWorld world = [] {
    synth::PopulationConfig config;
    config.agents = 5;
    config.days = 1;
    config.seed = 777;
    return synth::SyntheticWorld(config);
  }();
  return world;
}

class PoiExtractionProperty
    : public ::testing::TestWithParam<
          std::tuple<double, util::Timestamp>> {
 protected:
  PoiExtractor MakeExtractor() const {
    PoiExtractionConfig config;
    config.max_diameter_m = std::get<0>(GetParam());
    config.min_duration_s = std::get<1>(GetParam());
    return PoiExtractor(config);
  }
};

TEST_P(PoiExtractionProperty, StaysRespectDurationThreshold) {
  const auto extractor = MakeExtractor();
  const auto projection = DatasetProjection(World().dataset());
  for (const auto& trace : World().dataset().traces()) {
    for (const auto& stay : extractor.ExtractStays(trace, projection)) {
      EXPECT_GE(stay.departure - stay.arrival, std::get<1>(GetParam()));
      EXPECT_GE(stay.support, 1u);
      EXPECT_EQ(stay.user, trace.user());
    }
  }
}

TEST_P(PoiExtractionProperty, StaysAreTemporallyDisjointPerTrace) {
  const auto extractor = MakeExtractor();
  const auto projection = DatasetProjection(World().dataset());
  for (const auto& trace : World().dataset().traces()) {
    const auto stays = extractor.ExtractStays(trace, projection);
    for (std::size_t i = 1; i < stays.size(); ++i) {
      EXPECT_GT(stays[i].arrival, stays[i - 1].departure);
    }
  }
}

TEST_P(PoiExtractionProperty, PoiDwellEqualsSumOfStays) {
  const auto extractor = MakeExtractor();
  const auto projection = DatasetProjection(World().dataset());
  util::Timestamp total_stay_dwell = 0;
  for (const auto& trace : World().dataset().traces()) {
    for (const auto& stay : extractor.ExtractStays(trace, projection)) {
      total_stay_dwell += stay.departure - stay.arrival;
    }
  }
  util::Timestamp total_poi_dwell = 0;
  for (const auto& poi : extractor.Extract(World().dataset(), projection)) {
    total_poi_dwell += poi.total_dwell_s;
  }
  EXPECT_EQ(total_poi_dwell, total_stay_dwell);
}

TEST_P(PoiExtractionProperty, LongerMinDurationFindsNoMoreStays) {
  const auto extractor = MakeExtractor();
  PoiExtractionConfig stricter_config;
  stricter_config.max_diameter_m = std::get<0>(GetParam());
  stricter_config.min_duration_s = std::get<1>(GetParam()) * 2;
  const PoiExtractor stricter(stricter_config);
  const auto projection = DatasetProjection(World().dataset());
  for (const auto& trace : World().dataset().traces()) {
    EXPECT_LE(stricter.ExtractStays(trace, projection).size(),
              extractor.ExtractStays(trace, projection).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    DiametersAndDurations, PoiExtractionProperty,
    ::testing::Combine(::testing::Values(100.0, 200.0, 400.0),
                       ::testing::Values(util::Timestamp{600},
                                         util::Timestamp{900},
                                         util::Timestamp{1800})));

}  // namespace
}  // namespace mobipriv::attacks
