// LRU eviction of the `.mpc` mechanism-output cache, alone and under
// fault injection:
//   * the byte cap evicts least-recently-used entries first (sidecar
//     mtime order, refreshed on every hit; orphaned payloads go first);
//   * eviction and injected write failures never leave a torn committed
//     entry — at worst an orphaned payload, which readers treat as a miss;
//   * an engine run under a tiny cap (every entry, including a live chain
//     prefix, evicted as it is written) degrades to recompute and stays
//     byte-identical to the cache-off report — never a wrong answer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/output_cache.h"
#include "core/scenario.h"
#include "model/event_store.h"
#include "synth/population.h"
#include "util/fault.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;
namespace fault = util::fault;

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 8;
    config.days = 1;
    config.seed = 99;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

const model::EventStore& WorldStore() {
  static const model::EventStore* store =
      new model::EventStore(model::EventStore::FromDataset(World()));
  return *store;
}

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("mobipriv_evict_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

struct DisarmGuard {
  ~DisarmGuard() { fault::DisarmAll(); }
};

fault::Config FailTimes(std::uint64_t times) {
  fault::Config config;
  config.mode = fault::Mode::kFailTimes;
  config.times = times;
  return config;
}

fault::Config ShortIo(std::size_t bytes, std::uint64_t times = 1) {
  fault::Config config;
  config.mode = fault::Mode::kShortIo;
  config.bytes = bytes;
  config.times = times;
  return config;
}

/// Names of equal length, so every entry occupies the same byte total and
/// "cap = one entry" arithmetic is exact.
const std::string kNameA = "stage_a";
const std::string kNameB = "stage_b";
const std::string kNameC = "stage_c";
constexpr std::uint64_t kFp = 0x1234;
constexpr std::uint64_t kSeed = 1;

fs::path KeyPath(const fs::path& dir, const std::string& name) {
  return dir / (core::OutputCache::Stem(
                    core::OutputCache::KeyText(name, kFp, kSeed)) +
                ".key");
}
fs::path MpcPath(const fs::path& dir, const std::string& name) {
  return dir / (core::OutputCache::Stem(
                    core::OutputCache::KeyText(name, kFp, kSeed)) +
                ".mpc");
}

/// Sets an entry's LRU recency by backdating its sidecar `minutes` into
/// the past (larger = colder).
void Backdate(const fs::path& dir, const std::string& name, int minutes) {
  fs::last_write_time(KeyPath(dir, name), fs::file_time_type::clock::now() -
                                              std::chrono::minutes(minutes));
}

std::uint64_t EntryBytes(const fs::path& dir, const std::string& name) {
  return fs::file_size(MpcPath(dir, name)) + fs::file_size(KeyPath(dir, name));
}

/// The no-torn-entries invariant: only .mpc / .key files (no .tmp
/// leftovers), and every sidecar has its payload. An orphaned PAYLOAD is
/// legal (interrupted commit or eviction — readers miss); an orphaned
/// SIDECAR never is, since the sidecar is the commit marker.
void ExpectNoTornEntries(const fs::path& dir) {
  for (const auto& item : fs::directory_iterator(dir)) {
    const std::string ext = item.path().extension().string();
    EXPECT_TRUE(ext == ".mpc" || ext == ".key")
        << "unexpected file: " << item.path();
    if (ext == ".key") {
      EXPECT_TRUE(fs::exists(item.path().parent_path() /
                             (item.path().stem().string() + ".mpc")))
          << "orphaned sidecar (commit marker without payload): "
          << item.path();
    }
  }
}

TEST(CacheEviction, EvictsLeastRecentlyUsedFirst) {
  const ScratchDir scratch("lru");
  {
    core::OutputCache unbounded(scratch.path);
    unbounded.Store(core::OutputCache::KeyText(kNameA, kFp, kSeed),
                    WorldStore());
    unbounded.Store(core::OutputCache::KeyText(kNameB, kFp, kSeed),
                    WorldStore());
    unbounded.Store(core::OutputCache::KeyText(kNameC, kFp, kSeed),
                    WorldStore());
  }
  Backdate(scratch.path, kNameA, 30);  // coldest
  Backdate(scratch.path, kNameB, 20);
  Backdate(scratch.path, kNameC, 10);  // warmest

  core::OutputCache capped(scratch.path, EntryBytes(scratch.path, kNameC));
  capped.EnforceCap();
  EXPECT_EQ(capped.evictions(), 2u);
  EXPECT_FALSE(fs::exists(MpcPath(scratch.path, kNameA)));
  EXPECT_FALSE(fs::exists(KeyPath(scratch.path, kNameA)));
  EXPECT_FALSE(fs::exists(MpcPath(scratch.path, kNameB)));
  EXPECT_TRUE(fs::exists(MpcPath(scratch.path, kNameC)));
  EXPECT_TRUE(fs::exists(KeyPath(scratch.path, kNameC)));
  ExpectNoTornEntries(scratch.path);

  // The survivor still loads.
  model::EventStore loaded;
  EXPECT_TRUE(capped.TryLoad(core::OutputCache::KeyText(kNameC, kFp, kSeed),
                             loaded));
  EXPECT_EQ(loaded.EventCount(), WorldStore().EventCount());
}

TEST(CacheEviction, HitRefreshesRecencyAndSavesTheEntry) {
  const ScratchDir scratch("touch");
  core::OutputCache unbounded(scratch.path);
  unbounded.Store(core::OutputCache::KeyText(kNameA, kFp, kSeed),
                  WorldStore());
  unbounded.Store(core::OutputCache::KeyText(kNameB, kFp, kSeed),
                  WorldStore());
  Backdate(scratch.path, kNameA, 30);  // A would be evicted first...
  Backdate(scratch.path, kNameB, 10);

  // ...but a hit refreshes A's recency past B's.
  model::EventStore loaded;
  ASSERT_TRUE(unbounded.TryLoad(core::OutputCache::KeyText(kNameA, kFp, kSeed),
                                loaded));

  core::OutputCache capped(scratch.path, EntryBytes(scratch.path, kNameA));
  capped.EnforceCap();
  EXPECT_EQ(capped.evictions(), 1u);
  EXPECT_TRUE(fs::exists(MpcPath(scratch.path, kNameA)));
  EXPECT_FALSE(fs::exists(MpcPath(scratch.path, kNameB)));
}

TEST(CacheEviction, OrphanedPayloadsReadAsMissAndEvictFirst) {
  const ScratchDir scratch("orphan");
  core::OutputCache unbounded(scratch.path);
  unbounded.Store(core::OutputCache::KeyText(kNameA, kFp, kSeed),
                  WorldStore());
  unbounded.Store(core::OutputCache::KeyText(kNameB, kFp, kSeed),
                  WorldStore());

  // Orphan A (the state an interrupted eviction leaves behind): reader
  // misses, even though the payload is intact.
  fs::remove(KeyPath(scratch.path, kNameA));
  model::EventStore loaded;
  EXPECT_FALSE(unbounded.TryLoad(
      core::OutputCache::KeyText(kNameA, kFp, kSeed), loaded));

  // Under a cap, the orphan goes first even though B is older by mtime.
  Backdate(scratch.path, kNameB, 60);
  core::OutputCache capped(scratch.path, EntryBytes(scratch.path, kNameB));
  capped.EnforceCap();
  EXPECT_EQ(capped.evictions(), 1u);
  EXPECT_FALSE(fs::exists(MpcPath(scratch.path, kNameA)));
  EXPECT_TRUE(fs::exists(MpcPath(scratch.path, kNameB)));
  EXPECT_TRUE(fs::exists(KeyPath(scratch.path, kNameB)));
}

TEST(CacheEviction, InjectedWriteFaultsNeverCommitTornEntries) {
  const ScratchDir scratch("faults");
  const DisarmGuard guard;
  const std::string key = core::OutputCache::KeyText(kNameA, kFp, kSeed);
  core::OutputCache cache(scratch.path, 1);  // evict everything, always

  // A spill that fails before writing anything: no files at all.
  fault::Arm(fault::points::kCacheWriteSpill, FailTimes(1));
  cache.Store(key, WorldStore());
  ExpectNoTornEntries(scratch.path);
  model::EventStore loaded;
  EXPECT_FALSE(cache.TryLoad(key, loaded));

  // A payload write torn mid-file (short I/O): the atomic-commit helper
  // never publishes it — no committed payload, no sidecar.
  fault::DisarmAll();
  fault::Arm(fault::points::kColumnarWriteShort, ShortIo(64));
  cache.Store(key, WorldStore());
  ExpectNoTornEntries(scratch.path);
  EXPECT_FALSE(fs::exists(KeyPath(scratch.path, kNameA)));
  EXPECT_FALSE(cache.TryLoad(key, loaded));

  // Healthy again: the same Store commits (and the cap immediately evicts
  // it — still never a torn state).
  fault::DisarmAll();
  cache.Store(key, WorldStore());
  EXPECT_GE(cache.evictions(), 1u);
  ExpectNoTornEntries(scratch.path);
}

// ---- Engine under a byte cap: eviction is never a semantic event. -------

core::ScenarioSpec ChainSpec(const std::string& cache_dir,
                             std::uint64_t cache_max_bytes) {
  core::ScenarioSpec spec;
  spec.source = core::DatasetSourceSpec::Borrowed(World());
  // Two rows sharing a 2-stage prefix: 4 stage nodes, one of them a LIVE
  // prefix other nodes depend on.
  spec.mechanisms = {"geo_ind[eps=0.05]|downsampling[dt=120]|cloaking",
                     "geo_ind[eps=0.05]|downsampling[dt=120]|gaussian"};
  spec.evaluators = {"spatial_distortion", "certification"};
  spec.seeds = {3};
  spec.threads = 1;
  spec.mechanism_cache_dir = cache_dir;
  spec.mechanism_cache_max_bytes = cache_max_bytes;
  return spec;
}

TEST(CacheEviction, EngineUnderTinyCapRecomputesNeverWrongAnswer) {
  const ScratchDir scratch("engine");
  const std::string cache_dir = (scratch.path / "cache").string();
  const std::string reference =
      core::RunScenario(ChainSpec("", 0)).ToCsv();

  // Cap of 1 byte: every spill (including the live shared prefix) is
  // evicted the moment it lands. The run is unaffected — stage outputs
  // flow through memory; the cache is write-only losses.
  core::ScenarioEngine tiny(ChainSpec(cache_dir, 1));
  EXPECT_EQ(tiny.Run().ToCsv(), reference);
  EXPECT_EQ(tiny.stats().cache_misses, 4u);
  EXPECT_EQ(tiny.stats().cache_evictions, 4u);
  ExpectNoTornEntries(cache_dir);

  // The next run finds nothing (all evicted) and recomputes — cold again,
  // byte-identical again.
  core::ScenarioEngine again(ChainSpec(cache_dir, 1));
  EXPECT_EQ(again.Run().ToCsv(), reference);
  EXPECT_EQ(again.stats().cache_hits, 0u);
  EXPECT_EQ(again.stats().cache_misses, 4u);

  // Unbounded: cold spill, then a fully warm run — still byte-identical.
  core::ScenarioEngine cold(ChainSpec(cache_dir, 0));
  EXPECT_EQ(cold.Run().ToCsv(), reference);
  core::ScenarioEngine warm(ChainSpec(cache_dir, 0));
  EXPECT_EQ(warm.Run().ToCsv(), reference);
  EXPECT_EQ(warm.stats().cache_hits, 4u);
  EXPECT_EQ(warm.stats().cache_evictions, 0u);
}

TEST(CacheEviction, EngineEvictionUnderWriteFaultsStaysByteIdentical) {
  const ScratchDir scratch("engine_faults");
  const std::string cache_dir = (scratch.path / "cache").string();
  const DisarmGuard guard;
  const std::string reference =
      core::RunScenario(ChainSpec("", 0)).ToCsv();

  // First two spills fail outright AND the cap evicts whatever lands:
  // the report must not notice either.
  fault::Arm(fault::points::kCacheWriteSpill, FailTimes(2));
  core::ScenarioEngine hostile(ChainSpec(cache_dir, 1));
  EXPECT_EQ(hostile.Run().ToCsv(), reference);
  EXPECT_EQ(fault::TripCount(fault::points::kCacheWriteSpill), 2u);
  ExpectNoTornEntries(cache_dir);

  // Torn payload writes (short I/O on every spill this run) with an
  // unbounded cache: nothing commits, nothing tears, report identical.
  fault::DisarmAll();
  fault::Arm(fault::points::kColumnarWriteShort, ShortIo(64, 4));
  core::ScenarioEngine torn(ChainSpec(cache_dir, 0));
  EXPECT_EQ(torn.Run().ToCsv(), reference);
  ExpectNoTornEntries(cache_dir);
}

}  // namespace
}  // namespace mobipriv
