#include "mechanisms/geo_indistinguishability.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geo/projection.h"
#include "util/statistics.h"

namespace mobipriv::mech {
namespace {

TEST(LambertWMinus1, SatisfiesDefiningIdentity) {
  // W_{-1}(x) * e^{W_{-1}(x)} == x on the branch domain [-1/e, 0).
  for (const double x : {-0.3678, -0.3, -0.2, -0.1, -0.05, -0.01, -1e-4,
                         -1e-8}) {
    const double w = LambertWMinus1(x);
    EXPECT_LE(w, -1.0) << "lower branch value must be <= -1";
    EXPECT_NEAR(w * std::exp(w), x, std::abs(x) * 1e-9 + 1e-15) << "x=" << x;
  }
}

TEST(LambertWMinus1, BranchPoint) {
  const double w = LambertWMinus1(-1.0 / std::numbers::e);
  EXPECT_NEAR(w, -1.0, 1e-6);
}

TEST(SamplePlanarLaplaceRadius, PositiveAndFinite) {
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double r = SamplePlanarLaplaceRadius(0.01, rng);
    EXPECT_GE(r, 0.0);
    EXPECT_TRUE(std::isfinite(r));
  }
}

TEST(SamplePlanarLaplaceRadius, MeanMatchesTheory) {
  // Planar Laplace radius ~ Gamma(2, 1/eps): E[r] = 2/eps.
  util::Rng rng(7);
  const double eps = 0.01;
  util::RunningStat stat;
  for (int i = 0; i < 200000; ++i) {
    stat.Add(SamplePlanarLaplaceRadius(eps, rng));
  }
  EXPECT_NEAR(stat.Mean(), 2.0 / eps, 2.0 / eps * 0.02);
  // Var[r] = 2/eps^2 -> stddev = sqrt(2)/eps.
  EXPECT_NEAR(stat.Stddev(), std::sqrt(2.0) / eps,
              std::sqrt(2.0) / eps * 0.05);
}

TEST(SamplePlanarLaplaceRadius, ScalesInverselyWithEpsilon) {
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  util::RunningStat strong;
  util::RunningStat weak;
  for (int i = 0; i < 20000; ++i) {
    strong.Add(SamplePlanarLaplaceRadius(0.001, rng_a));
    weak.Add(SamplePlanarLaplaceRadius(0.1, rng_b));
  }
  EXPECT_GT(strong.Mean(), 50.0 * weak.Mean());
}

TEST(GeoIndistinguishability, PerturbsEveryPointKeepsTimes) {
  const GeoIndistinguishability mechanism(GeoIndConfig{0.01});
  model::Dataset dataset;
  std::vector<model::Event> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back({{45.764 + 0.0001 * i, 4.8357},
                      static_cast<util::Timestamp>(i * 60)});
  }
  dataset.AddTraceForUser("u", events);
  util::Rng rng(11);
  const model::Dataset out = mechanism.Apply(dataset, rng);
  ASSERT_EQ(out.EventCount(), 50u);
  const auto& trace = out.traces().front();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].time, dataset.traces().front()[i].time);
    // Perturbation is almost surely non-zero.
    EXPECT_GT(geo::HaversineDistance(trace[i].position,
                                     dataset.traces().front()[i].position),
              0.0);
  }
}

TEST(GeoIndistinguishability, EmpiricalNoiseMatchesEpsilon) {
  const double eps = 0.02;
  const GeoIndistinguishability mechanism(GeoIndConfig{eps});
  model::Dataset dataset;
  std::vector<model::Event> events(2000,
                                   model::Event{{45.764, 4.8357}, 0});
  dataset.AddTraceForUser("u", events);
  util::Rng rng(13);
  const model::Dataset out = mechanism.Apply(dataset, rng);
  util::RunningStat displacement;
  for (std::size_t i = 0; i < out.traces().front().size(); ++i) {
    displacement.Add(geo::HaversineDistance(
        out.traces().front()[i].position, {45.764, 4.8357}));
  }
  EXPECT_NEAR(displacement.Mean(), 2.0 / eps, 2.0 / eps * 0.1);
}

TEST(GeoIndistinguishability, DeterministicGivenRngSeed) {
  const GeoIndistinguishability mechanism;
  model::Dataset dataset;
  dataset.AddTraceForUser("u", {{{45.764, 4.8357}, 0}});
  util::Rng rng_a(21);
  util::Rng rng_b(21);
  const auto out_a = mechanism.Apply(dataset, rng_a);
  const auto out_b = mechanism.Apply(dataset, rng_b);
  EXPECT_EQ(out_a.traces().front().front(),
            out_b.traces().front().front());
}

TEST(GeoIndistinguishability, NameEncodesEpsilon) {
  EXPECT_EQ(GeoIndistinguishability(GeoIndConfig{0.05}).Name(),
            "geo_ind[eps=0.0500]");
}

}  // namespace
}  // namespace mobipriv::mech
