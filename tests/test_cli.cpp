#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace mobipriv::util {
namespace {

CliParser MakeParser() {
  CliParser parser("test tool");
  parser.AddOption("count", "how many", "10");
  parser.AddOption("name", "a name", "default");
  parser.AddOption("ratio", "a double", "0.5");
  parser.AddFlag("verbose", "talk more");
  return parser;
}

TEST(CliParser, DefaultsApply) {
  auto parser = MakeParser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(parser.Parse(1, argv));
  EXPECT_EQ(parser.GetInt("count"), 10);
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
  EXPECT_FALSE(parser.Has("count"));  // not explicitly set
}

TEST(CliParser, SpaceSeparatedValues) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--count", "42", "--name", "alice"};
  ASSERT_TRUE(parser.Parse(5, argv));
  EXPECT_EQ(parser.GetInt("count"), 42);
  EXPECT_EQ(parser.GetString("name"), "alice");
  EXPECT_TRUE(parser.Has("count"));
}

TEST(CliParser, EqualsSyntax) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--count=7", "--ratio=0.25"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_EQ(parser.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.25);
}

TEST(CliParser, Flags) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--verbose"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(CliParser, PositionalArguments) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "input.csv", "--count", "1", "output.csv"};
  ASSERT_TRUE(parser.Parse(5, argv));
  EXPECT_EQ(parser.Positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(CliParser, UnknownOptionFails) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--bogus", "1"};
  EXPECT_FALSE(parser.Parse(3, argv));
}

TEST(CliParser, MissingValueFails) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--count"};
  EXPECT_FALSE(parser.Parse(2, argv));
}

TEST(CliParser, HelpReturnsFalse) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--help"};
  EXPECT_FALSE(parser.Parse(2, argv));
}

TEST(CliParser, UsageListsOptions) {
  const auto parser = MakeParser();
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

TEST(CliParser, BoolParsingVariants) {
  auto parser = MakeParser();
  const char* argv[] = {"tool", "--verbose=yes"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(RunOptions, SharedFlagPairParsesAndAppliesThreads) {
  const std::size_t previous = ParallelismOverride();
  CliParser parser("engine-backed tool");
  AddRunOptions(parser, 42);
  EXPECT_NE(parser.Usage().find("--threads"), std::string::npos);
  EXPECT_NE(parser.Usage().find("--seed"), std::string::npos);

  const char* argv[] = {"tool", "--threads", "2", "--seed", "99"};
  ASSERT_TRUE(parser.Parse(5, argv));
  const RunOptions options = ApplyRunOptions(parser);
  EXPECT_EQ(options.threads, 2u);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(ParallelismOverride(), 2u);
  SetParallelismLevel(previous);  // restore for other tests
}

TEST(RunOptions, DefaultsAreAmbientThreadsAndGivenSeed) {
  const std::size_t previous = ParallelismOverride();
  CliParser parser("engine-backed tool");
  AddRunOptions(parser, 42);
  const char* argv[] = {"tool"};
  ASSERT_TRUE(parser.Parse(1, argv));
  const RunOptions options = ApplyRunOptions(parser);
  EXPECT_EQ(options.threads, 0u);
  EXPECT_EQ(options.seed, 42u);
  SetParallelismLevel(previous);
}

}  // namespace
}  // namespace mobipriv::util
