#include "model/filters.h"

#include <gtest/gtest.h>

namespace mobipriv::model {
namespace {

Trace LinearTrace() {
  // Northward at ~11 m/s, fix every 100 s.
  return Trace(1, {{{45.00, 4.0}, 0},
                   {{45.01, 4.0}, 100},
                   {{45.02, 4.0}, 200},
                   {{45.03, 4.0}, 300}});
}

TEST(SplitByGap, NoGapSingle) {
  const auto pieces = SplitByGap(LinearTrace(), 150);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces.front().size(), 4u);
  EXPECT_EQ(pieces.front().user(), 1u);
}

TEST(SplitByGap, SplitsAtGaps) {
  Trace trace(2, {{{45.0, 4.0}, 0},
                  {{45.0, 4.0}, 100},
                  {{45.0, 4.0}, 5000},  // gap
                  {{45.0, 4.0}, 5100}});
  const auto pieces = SplitByGap(trace, 1000);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].size(), 2u);
  EXPECT_EQ(pieces[1].size(), 2u);
  EXPECT_EQ(pieces[1].front().time, 5000);
}

TEST(SplitByGap, DropsShortPieces) {
  Trace trace(2, {{{45.0, 4.0}, 0},
                  {{45.0, 4.0}, 5000},
                  {{45.0, 4.0}, 5100}});
  // First piece has a single event -> dropped with min_events = 2.
  const auto pieces = SplitByGap(trace, 1000, 2);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces.front().front().time, 5000);
}

TEST(SplitDatasetByGap, PreservesUserNames) {
  Dataset dataset;
  dataset.AddTraceForUser("alice", {{{45.0, 4.0}, 0},
                                    {{45.0, 4.0}, 100},
                                    {{45.0, 4.0}, 9000},
                                    {{45.0, 4.0}, 9100}});
  const Dataset out = SplitDatasetByGap(dataset, 1000);
  EXPECT_EQ(out.TraceCount(), 2u);
  EXPECT_EQ(out.UserName(out.traces().front().user()), "alice");
}

TEST(DeduplicateTimes, RemovesDuplicates) {
  Trace trace(1, {{{45.0, 4.0}, 10},
                  {{45.1, 4.0}, 10},
                  {{45.2, 4.0}, 20}});
  const Trace out = DeduplicateTimes(trace);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out.front().position.lat, 45.0, 1e-12);  // first kept
}

TEST(RemoveSpeedOutliers, DropsTeleports) {
  Trace trace(1, {{{45.00, 4.0}, 0},
                  {{45.01, 4.0}, 100},   // ~11 m/s: fine
                  {{46.50, 4.0}, 200},   // ~1650 m/s: glitch
                  {{45.02, 4.0}, 300}});
  const Trace out = RemoveSpeedOutliers(trace, 50.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[2].position.lat, 45.02, 1e-12);
}

TEST(RemoveSpeedOutliers, DropsNonMonotoneTimes) {
  Trace trace(1, {{{45.00, 4.0}, 100}, {{45.01, 4.0}, 100}});
  const Trace out = RemoveSpeedOutliers(trace, 50.0);
  EXPECT_EQ(out.size(), 1u);
}

TEST(InterpolateAt, MidpointAndClamping) {
  const Trace trace = LinearTrace();
  const auto mid = InterpolateAt(trace, 50);
  EXPECT_NEAR(mid.lat, 45.005, 1e-9);
  EXPECT_NEAR(InterpolateAt(trace, -100).lat, 45.00, 1e-12);
  EXPECT_NEAR(InterpolateAt(trace, 9999).lat, 45.03, 1e-12);
  EXPECT_NEAR(InterpolateAt(trace, 200).lat, 45.02, 1e-12);  // exact fix
}

TEST(ResampleTime, UniformStep) {
  const Trace out = ResampleTime(LinearTrace(), 60);
  // Times: 0, 60, 120, 180, 240, 300.
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out.back().time, 300);
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_EQ(out[i].time - out[i - 1].time, 60);
  }
  EXPECT_NEAR(out[1].position.lat, 45.006, 1e-9);
}

TEST(ResampleTime, AppendsFinalFix) {
  const Trace out = ResampleTime(LinearTrace(), 250);
  // Times: 0, 250, then final 300 appended.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.back().time, 300);
}

TEST(ResampleTime, ShortTraceUnchanged) {
  Trace single(1, {{{45.0, 4.0}, 10}});
  EXPECT_EQ(ResampleTime(single, 60).size(), 1u);
}

}  // namespace
}  // namespace mobipriv::model
