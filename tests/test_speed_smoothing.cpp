#include "mechanisms/speed_smoothing.h"

#include <gtest/gtest.h>

#include "attacks/poi_extraction.h"
#include "geo/projection.h"
#include "model/stats.h"
#include "util/rng.h"

namespace mobipriv::mech {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// Stop 30 min at A, drive east 5 km, stop 30 min at B.
model::Trace StopGoStopTrace(model::UserId user = 1) {
  const geo::LocalProjection projection(kOrigin);
  util::Rng rng(user);
  model::Trace trace;
  trace.set_user(user);
  util::Timestamp t = 1000;
  // Dwell at A with jitter.
  for (; t <= 1000 + 1800; t += 30) {
    trace.Append({projection.Unproject({rng.Uniform(-8.0, 8.0),
                                        rng.Uniform(-8.0, 8.0)}),
                  t});
  }
  // Travel 5 km at 10 m/s.
  const util::Timestamp travel_start = t;
  for (; t < travel_start + 500; t += 30) {
    const double x = 10.0 * static_cast<double>(t - travel_start);
    trace.Append({projection.Unproject({x, 0.0}), t});
  }
  // Dwell at B.
  const util::Timestamp dwell_start = t;
  for (; t <= dwell_start + 1800; t += 30) {
    trace.Append({projection.Unproject({5000.0 + rng.Uniform(-8.0, 8.0),
                                        rng.Uniform(-8.0, 8.0)}),
                  t});
  }
  return trace;
}

TEST(SpeedSmoothing, OutputHasExactlyConstantChords) {
  const SpeedSmoothing mechanism;
  const model::Trace out = mechanism.Smooth(StopGoStopTrace());
  ASSERT_GE(out.size(), 3u);
  const auto dists = model::InterEventDistances(out);
  // Every hop equals the configured spacing exactly (the trailing
  // remainder is trimmed).
  for (std::size_t i = 0; i < dists.size(); ++i) {
    EXPECT_NEAR(dists[i], 100.0, 0.2) << "hop " << i;
  }
}

TEST(SpeedSmoothing, TimestampsAreUniform) {
  const SpeedSmoothing mechanism;
  const model::Trace in = StopGoStopTrace();
  const model::Trace out = mechanism.Smooth(in);
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out.front().time, in.front().time);
  EXPECT_EQ(out.back().time, in.back().time);
  const auto intervals = model::InterEventIntervals(out);
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_NEAR(intervals[i], intervals[0], 1.5);  // +-0.5 s rounding x2
  }
}

TEST(SpeedSmoothing, SpeedCoefficientOfVariationNearZero) {
  const SpeedSmoothing mechanism;
  const model::Trace in = StopGoStopTrace();
  // Raw trace alternates 0 and 10 m/s: CV is large.
  EXPECT_GT(model::SpeedCoefficientOfVariation(in), 0.5);
  const model::Trace out = mechanism.Smooth(in);
  // Published trace: constant speed up to integer-second rounding.
  EXPECT_LT(model::SpeedCoefficientOfVariation(out), 0.05);
}

TEST(SpeedSmoothing, HidesPoisFromTheExtractionAttack) {
  const SpeedSmoothing mechanism;
  model::Dataset dataset;
  dataset.InternUser("u");
  dataset.AddTrace(StopGoStopTrace(0));
  util::Rng rng(5);
  const model::Dataset published = mechanism.Apply(dataset, rng);
  const attacks::PoiExtractor extractor;
  // The raw trace leaks both stops; the published one leaks none.
  EXPECT_EQ(extractor.Extract(dataset).size(), 2u);
  EXPECT_TRUE(extractor.Extract(published).empty());
}

TEST(SpeedSmoothing, GeometryStaysOnInputPath) {
  const SpeedSmoothing mechanism;
  const model::Trace in = StopGoStopTrace();
  const model::Trace out = mechanism.Smooth(in);
  const geo::LocalProjection projection(kOrigin);
  // Every published point within spacing of the straight east-west road.
  for (const auto& event : out) {
    const geo::Point2 p = projection.Project(event.position);
    EXPECT_GE(p.x, -120.0);
    EXPECT_LE(p.x, 5120.0);
    EXPECT_LT(std::abs(p.y), 120.0);
  }
}

TEST(SpeedSmoothing, EndpointsApproximatelyPreserved) {
  const SpeedSmoothing mechanism;
  const model::Trace in = StopGoStopTrace();
  const model::Trace out = mechanism.Smooth(in);
  // Start is exact; end may be trimmed by up to one spacing (plus the
  // dwell-jitter radius of the final stop).
  EXPECT_NEAR(
      geo::HaversineDistance(out.front().position, in.front().position), 0.0,
      0.01);
  EXPECT_LE(geo::HaversineDistance(out.back().position, in.back().position),
            100.0 + 20.0);
}

TEST(SpeedSmoothing, DropsShortTraces) {
  SpeedSmoothingConfig config;
  config.min_length_m = 500.0;
  const SpeedSmoothing mechanism(config);
  const geo::LocalProjection projection(kOrigin);
  // A pure dwell: chord-resampled length ~ 0.
  util::Rng rng(1);
  model::Trace dwell;
  dwell.set_user(0);
  for (util::Timestamp t = 0; t < 3600; t += 30) {
    dwell.Append({projection.Unproject({rng.Uniform(-10.0, 10.0),
                                        rng.Uniform(-10.0, 10.0)}),
                  t});
  }
  EXPECT_TRUE(mechanism.Smooth(dwell).empty());
  // And the dataset-level Apply removes it entirely.
  model::Dataset dataset;
  dataset.InternUser("u");
  dataset.AddTrace(dwell);
  util::Rng rng2(2);
  EXPECT_EQ(mechanism.Apply(dataset, rng2).TraceCount(), 0u);
}

TEST(SpeedSmoothing, TinyInputs) {
  const SpeedSmoothing mechanism;
  EXPECT_TRUE(mechanism.Smooth(model::Trace{}).empty());
  model::Trace one(1, {{kOrigin, 10}});
  EXPECT_TRUE(mechanism.Smooth(one).empty());
}

TEST(SpeedSmoothing, SpacingConfigHonored) {
  SpeedSmoothingConfig config;
  config.spacing_m = 250.0;
  const SpeedSmoothing mechanism(config);
  const model::Trace out = mechanism.Smooth(StopGoStopTrace());
  const auto dists = model::InterEventDistances(out);
  ASSERT_GE(dists.size(), 2u);
  for (std::size_t i = 0; i < dists.size(); ++i) {
    EXPECT_NEAR(dists[i], 250.0, 0.5);
  }
}

TEST(SpeedSmoothing, NameEncodesConfig) {
  SpeedSmoothingConfig config;
  config.spacing_m = 50.0;
  EXPECT_EQ(SpeedSmoothing(config).Name(), "speed_smoothing[eps=50m]");
}

TEST(SpeedSmoothing, DeterministicAcrossCalls) {
  const SpeedSmoothing mechanism;
  const model::Trace in = StopGoStopTrace();
  const model::Trace a = mechanism.Smooth(in);
  const model::Trace b = mechanism.Smooth(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace mobipriv::mech
