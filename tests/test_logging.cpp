#include "util/logging.h"

#include <gtest/gtest.h>

namespace mobipriv::util {
namespace {

/// RAII guard restoring the global log level after each test.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the test asserts no crash / no throw.
  Log(LogLevel::kDebug, "invisible");
  Log(LogLevel::kInfo, "invisible");
  MOBIPRIV_LOG_DEBUG() << "streamed " << 42 << " invisible";
  SUCCEED();
}

TEST(Logging, EmittingLevelsDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  Log(LogLevel::kError, "visible test error (expected in output)");
  MOBIPRIV_LOG_ERROR() << "streamed visible test error";
  SUCCEED();
}

TEST(Logging, StreamedMessageBuildsLazily) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  int calls = 0;
  const auto count = [&calls] {
    ++calls;
    return calls;
  };
  // The stream expression always evaluates (cheap); the test documents
  // that semantics: building is eager, emission is filtered.
  MOBIPRIV_LOG_DEBUG() << count();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mobipriv::util
