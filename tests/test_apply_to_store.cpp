// ApplyToStore equivalence: the SoA-native mechanism path must be
// bit-for-bit the AoS path for EVERY registry mechanism —
//   EventStore::ToDataset(ApplyToStore(view)) == Apply(dataset)
// for the same input and rng seed, at worker counts 1 and 4 (lat/lng/time
// bit patterns, trace order, user ids and the full name table), with the
// caller's rng advanced identically by both entry points.
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "mechanisms/registry.h"
#include "mechanisms/speed_smoothing.h"
#include "model/event_store.h"
#include "model/views.h"
#include "synth/population.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mobipriv {
namespace {

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 12;
    config.days = 1;
    config.seed = 321;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

/// Bitwise dataset comparison (EXPECTs with context instead of one opaque
/// bool, so a parity break names the first diverging trace).
void ExpectBitIdentical(const model::Dataset& expected,
                        const model::Dataset& actual,
                        const std::string& context) {
  ASSERT_EQ(expected.UserCount(), actual.UserCount()) << context;
  for (model::UserId id = 0;
       id < static_cast<model::UserId>(expected.UserCount()); ++id) {
    ASSERT_EQ(expected.UserName(id), actual.UserName(id)) << context;
  }
  ASSERT_EQ(expected.TraceCount(), actual.TraceCount()) << context;
  for (std::size_t t = 0; t < expected.TraceCount(); ++t) {
    const model::Trace& a = expected.traces()[t];
    const model::Trace& b = actual.traces()[t];
    ASSERT_EQ(a.user(), b.user()) << context << " trace " << t;
    ASSERT_EQ(a.size(), b.size()) << context << " trace " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Bit casts: -0.0 vs 0.0 or NaN payload drift must fail too.
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i].position.lat),
                std::bit_cast<std::uint64_t>(b[i].position.lat))
          << context << " trace " << t << " fix " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i].position.lng),
                std::bit_cast<std::uint64_t>(b[i].position.lng))
          << context << " trace " << t << " fix " << i;
      ASSERT_EQ(a[i].time, b[i].time)
          << context << " trace " << t << " fix " << i;
    }
  }
}

/// Every mechanism the registry can spell, including the whole-dataset
/// ones (mixzone, wait4me, the composed "ours" pipelines).
std::vector<std::string> AllSpecs() {
  std::vector<std::string> specs =
      core::StandardRosterSpecs({0.1, 0.01});
  specs.push_back("mixzone");
  specs.push_back("speed_smoothing");
  specs.push_back("wait4me[k=2,delta=800m]");
  return specs;
}

TEST(ApplyToStore, BitIdenticalToApplyForEveryRegistryMechanism) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const util::ScopedParallelism scope(threads);
    for (const std::string& spec : AllSpecs()) {
      const auto mechanism = mech::CreateMechanism(spec);
      util::Rng aos_rng(99);
      const model::Dataset via_apply = mechanism->Apply(World(), aos_rng);

      util::Rng soa_rng(99);
      const model::EventStore store = mechanism->ApplyToStore(
          model::DatasetView::Of(World()), soa_rng);
      const std::string context =
          spec + " @threads=" + std::to_string(threads);
      ExpectBitIdentical(via_apply, store.ToDataset(), context);
      // Both entry points must advance the caller's rng identically, or
      // mixing them mid-stream would silently fork experiment results.
      EXPECT_EQ(aos_rng.NextU64(), soa_rng.NextU64()) << context;
    }
  }
}

TEST(ApplyToStore, ApplyViewMatchesToo) {
  // The three-way contract on one noisy mechanism: view in, AoS out.
  const auto mechanism = mech::CreateMechanism("gaussian[sigma=25m]");
  util::Rng aos_rng(7);
  const model::Dataset via_apply = mechanism->Apply(World(), aos_rng);
  util::Rng view_rng(7);
  const model::Dataset via_view =
      mechanism->ApplyView(model::DatasetView::Of(World()), view_rng);
  ExpectBitIdentical(via_apply, via_view, "gaussian ApplyView");
}

TEST(ApplyToStore, PerTraceMechanismsPerformZeroTraceCopies) {
  // The columns kernels read views and write column buffers: no
  // TraceView::Materialize anywhere on the store path.
  const model::EventStore source = model::EventStore::FromDataset(World());
  for (const char* spec :
       {"speed_smoothing", "geo_ind[eps=0.01]", "cloaking", "gaussian",
        "downsampling", "identity"}) {
    const auto mechanism = mech::CreateMechanism(spec);
    util::Rng rng(5);
    const std::size_t copies_before = model::TraceCopyCount();
    const model::EventStore out =
        mechanism->ApplyToStore(source.View(), rng);
    EXPECT_EQ(model::TraceCopyCount(), copies_before) << spec;
    EXPECT_GT(out.EventCount(), 0u) << spec;
  }
}

TEST(ApplyToStore, SuppressedTracesAreSkippedNamesKept) {
  // speed_smoothing drops short traces: the store must skip their ranges
  // but keep the full user name table (ids stay aligned with the input).
  mech::SpeedSmoothing smoothing;  // default min_length drops short traces
  util::Rng rng(1);
  const model::EventStore store =
      smoothing.ApplyToStore(model::DatasetView::Of(World()), rng);
  EXPECT_EQ(store.UserCount(), World().UserCount());
  EXPECT_LE(store.TraceCount(), World().TraceCount());
  for (std::size_t t = 0; t < store.TraceCount(); ++t) {
    EXPECT_GT(store.TraceSize(t), 0u);
  }
}

}  // namespace
}  // namespace mobipriv
