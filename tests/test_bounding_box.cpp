#include "geo/bounding_box.h"

#include <gtest/gtest.h>

namespace mobipriv::geo {
namespace {

TEST(GeoBoundingBox, EmptyContainsNothing) {
  const GeoBoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_FALSE(box.Contains({0.0, 0.0}));
  EXPECT_DOUBLE_EQ(box.DiagonalMeters(), 0.0);
}

TEST(GeoBoundingBox, ExtendAndContains) {
  GeoBoundingBox box;
  box.Extend({45.0, 4.0});
  box.Extend({46.0, 5.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({45.5, 4.5}));
  EXPECT_TRUE(box.Contains({45.0, 4.0}));  // boundary inclusive
  EXPECT_FALSE(box.Contains({44.9, 4.5}));
  EXPECT_FALSE(box.Contains({45.5, 5.1}));
  EXPECT_EQ(box.SouthWest(), (LatLng{45.0, 4.0}));
  EXPECT_EQ(box.NorthEast(), (LatLng{46.0, 5.0}));
}

TEST(GeoBoundingBox, Center) {
  GeoBoundingBox box({45.0, 4.0}, {46.0, 5.0});
  EXPECT_EQ(box.Center(), (LatLng{45.5, 4.5}));
}

TEST(GeoBoundingBox, ExtendWithBox) {
  GeoBoundingBox a({45.0, 4.0}, {45.5, 4.5});
  const GeoBoundingBox b({45.4, 4.4}, {46.0, 5.0});
  a.Extend(b);
  EXPECT_EQ(a.SouthWest(), (LatLng{45.0, 4.0}));
  EXPECT_EQ(a.NorthEast(), (LatLng{46.0, 5.0}));
  // Extending with an empty box is a no-op.
  a.Extend(GeoBoundingBox{});
  EXPECT_EQ(a.NorthEast(), (LatLng{46.0, 5.0}));
}

TEST(GeoBoundingBox, Intersects) {
  const GeoBoundingBox a({45.0, 4.0}, {45.5, 4.5});
  const GeoBoundingBox b({45.4, 4.4}, {46.0, 5.0});
  const GeoBoundingBox c({47.0, 6.0}, {48.0, 7.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(GeoBoundingBox{}));
}

TEST(GeoBoundingBox, OfPoints) {
  const auto box =
      GeoBoundingBox::Of({{45.0, 4.8}, {45.9, 4.1}, {45.3, 4.5}});
  EXPECT_EQ(box.SouthWest(), (LatLng{45.0, 4.1}));
  EXPECT_EQ(box.NorthEast(), (LatLng{45.9, 4.8}));
  EXPECT_TRUE(GeoBoundingBox::Of({}).IsEmpty());
}

TEST(GeoBoundingBox, DiagonalPositive) {
  const GeoBoundingBox box({45.0, 4.0}, {46.0, 5.0});
  EXPECT_GT(box.DiagonalMeters(), 100000.0);
}

TEST(Rect, ContainsAndIntersects) {
  const Rect r{{0.0, 0.0}, {10.0, 5.0}};
  EXPECT_TRUE(r.Contains({5.0, 2.5}));
  EXPECT_TRUE(r.Contains({0.0, 0.0}));
  EXPECT_TRUE(r.Contains({10.0, 5.0}));
  EXPECT_FALSE(r.Contains({10.1, 2.0}));
  const Rect other{{9.0, 4.0}, {20.0, 20.0}};
  EXPECT_TRUE(r.Intersects(other));
  const Rect far{{100.0, 100.0}, {110.0, 110.0}};
  EXPECT_FALSE(r.Intersects(far));
}

TEST(Rect, Dimensions) {
  const Rect r{{1.0, 2.0}, {4.0, 6.0}};
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_EQ(r.Center(), (Point2{2.5, 4.0}));
}

TEST(Rect, OfPoints) {
  const Rect r = Rect::Of({{3.0, 1.0}, {-1.0, 4.0}, {2.0, 2.0}});
  EXPECT_EQ(r.min, (Point2{-1.0, 1.0}));
  EXPECT_EQ(r.max, (Point2{3.0, 4.0}));
}

}  // namespace
}  // namespace mobipriv::geo
