#include "synth/road_network.h"

#include <gtest/gtest.h>

#include <queue>

#include "geo/distance.h"

namespace mobipriv::synth {
namespace {

RoadNetworkConfig SmallConfig() {
  RoadNetworkConfig config;
  config.width_m = 1000.0;
  config.height_m = 1000.0;
  config.block_size_m = 200.0;
  config.jitter_m = 10.0;
  config.edge_removal_prob = 0.2;
  return config;
}

TEST(RoadNetwork, GridHasExpectedNodeCount) {
  util::Rng rng(1);
  const RoadNetwork net(SmallConfig(), rng);
  // floor(1000/200)+1 = 6 per axis.
  EXPECT_EQ(net.NodeCount(), 36u);
}

TEST(RoadNetwork, GeneratedGraphIsConnected) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    util::Rng rng(seed);
    RoadNetworkConfig config = SmallConfig();
    config.edge_removal_prob = 0.4;  // aggressive removal
    const RoadNetwork net(config, rng);
    // BFS from node 0 must reach every node.
    std::vector<bool> seen(net.NodeCount(), false);
    std::queue<NodeId> queue;
    queue.push(0);
    seen[0] = true;
    std::size_t reached = 1;
    while (!queue.empty()) {
      const NodeId node = queue.front();
      queue.pop();
      for (const NodeId next : net.Neighbors(node)) {
        if (!seen[next]) {
          seen[next] = true;
          ++reached;
          queue.push(next);
        }
      }
    }
    EXPECT_EQ(reached, net.NodeCount()) << "seed " << seed;
  }
}

TEST(RoadNetwork, NearestNode) {
  util::Rng rng(5);
  const RoadNetwork net(SmallConfig(), rng);
  const NodeId id = net.NearestNode({0.0, 0.0});
  // Node 0 sits near the origin (jittered by ~10 m).
  EXPECT_LT(geo::Distance(net.NodePosition(id), {0.0, 0.0}), 100.0);
}

TEST(RoadNetwork, ShortestPathEndpoints) {
  util::Rng rng(7);
  const RoadNetwork net(SmallConfig(), rng);
  const NodeId from = net.NearestNode({0.0, 0.0});
  const NodeId to = net.NearestNode({1000.0, 1000.0});
  const auto path = net.ShortestPath(from, to);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(path->size(), 2u);
  EXPECT_EQ(path->front(), net.NodePosition(from));
  EXPECT_EQ(path->back(), net.NodePosition(to));
}

TEST(RoadNetwork, ShortestPathToSelf) {
  util::Rng rng(7);
  const RoadNetwork net(SmallConfig(), rng);
  const auto path = net.ShortestPath(3, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(RoadNetwork, AStarMatchesDijkstraOptimality) {
  // A* with an admissible heuristic must return the true shortest length;
  // verify against brute-force Dijkstra on a hand-built graph.
  //
  //   0 --- 1
  //   |     |
  //   3 --- 2       plus shortcut 0-2 of length ~ sqrt(2)
  const std::vector<geo::Point2> nodes{
      {0.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}, {0.0, 0.0}};
  const RoadNetwork net = RoadNetwork::FromGraph(
      nodes, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const auto path = net.ShortestPath(1, 3);
  ASSERT_TRUE(path.has_value());
  // Best 1 -> 3 is 1-0-3 or 1-2-3, both length 2 (the diagonal helps only
  // 0<->2). The returned geometric length must be 2.
  EXPECT_NEAR(RoadNetwork::PathLength(*path), 2.0, 1e-9);
}

TEST(RoadNetwork, DisconnectedReturnsNullopt) {
  const std::vector<geo::Point2> nodes{{0.0, 0.0}, {1.0, 0.0}, {5.0, 5.0}};
  const RoadNetwork net = RoadNetwork::FromGraph(nodes, {{0, 1}});
  EXPECT_FALSE(net.ShortestPath(0, 2).has_value());
}

TEST(RoadNetwork, PathLengthHelper) {
  EXPECT_DOUBLE_EQ(
      RoadNetwork::PathLength({{0.0, 0.0}, {3.0, 4.0}}), 5.0);
  EXPECT_DOUBLE_EQ(RoadNetwork::PathLength({}), 0.0);
}

TEST(RoadNetwork, ExtentCoversAllNodes) {
  util::Rng rng(11);
  const RoadNetwork net(SmallConfig(), rng);
  const geo::Rect extent = net.Extent();
  for (NodeId i = 0; i < net.NodeCount(); ++i) {
    EXPECT_TRUE(extent.Contains(net.NodePosition(i)));
  }
}

TEST(RoadNetwork, DeterministicGivenSeed) {
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const RoadNetwork a(SmallConfig(), rng_a);
  const RoadNetwork b(SmallConfig(), rng_b);
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  for (NodeId i = 0; i < a.NodeCount(); ++i) {
    EXPECT_EQ(a.NodePosition(i), b.NodePosition(i));
    EXPECT_EQ(a.Neighbors(i), b.Neighbors(i));
  }
}

}  // namespace
}  // namespace mobipriv::synth
