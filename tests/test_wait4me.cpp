#include "mechanisms/wait4me.h"

#include <gtest/gtest.h>

#include "geo/projection.h"

namespace mobipriv::mech {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

/// `count` parallel eastbound traces, vertically `gap_m` apart, sharing the
/// time span [0, 1000].
model::Dataset ParallelTraces(std::size_t count, double gap_m) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  for (std::size_t u = 0; u < count; ++u) {
    std::vector<model::Event> events;
    for (int i = 0; i <= 10; ++i) {
      events.push_back(
          {projection.Unproject({i * 100.0, static_cast<double>(u) * gap_m}),
           static_cast<util::Timestamp>(i * 100)});
    }
    dataset.AddTraceForUser("u" + std::to_string(u), std::move(events));
  }
  return dataset;
}

TEST(Wait4Me, CloseTracesFormClustersNothingSuppressed) {
  Wait4MeConfig config;
  config.k = 2;
  config.delta_m = 400.0;
  const Wait4Me mechanism(config);
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(ParallelTraces(4, 50.0), rng);
  EXPECT_EQ(out.TraceCount(), 4u);
  EXPECT_DOUBLE_EQ(mechanism.LastSuppressionRatio(), 0.0);
}

TEST(Wait4Me, EnforcesDeltaCylinder) {
  Wait4MeConfig config;
  config.k = 2;
  config.delta_m = 100.0;  // tighter than the 300 m spread
  const Wait4Me mechanism(config);
  util::Rng rng(1);
  const model::Dataset input = ParallelTraces(2, 300.0);
  const model::Dataset out = mechanism.Apply(input, rng);
  ASSERT_EQ(out.TraceCount(), 2u);
  const geo::LocalProjection projection(kOrigin);
  // At every time step the two published tracks are within delta.
  const auto& a = out.traces()[0];
  const auto& b = out.traces()[1];
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = geo::Distance(projection.Project(a[i].position),
                                   projection.Project(b[i].position));
    EXPECT_LE(d, 100.0 + 1e-6);
  }
}

TEST(Wait4Me, OddOneOutSuppressed) {
  Wait4MeConfig config;
  config.k = 2;
  const Wait4Me mechanism(config);
  util::Rng rng(1);
  // 3 traces, k = 2: one cluster of 2, the leftover is trash.
  const model::Dataset out = mechanism.Apply(ParallelTraces(3, 50.0), rng);
  EXPECT_EQ(out.TraceCount(), 2u);
  EXPECT_NEAR(mechanism.LastSuppressionRatio(), 1.0 / 3.0, 1e-9);
}

TEST(Wait4Me, KLargerThanPopulationSuppressesAll) {
  Wait4MeConfig config;
  config.k = 10;
  const Wait4Me mechanism(config);
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(ParallelTraces(3, 50.0), rng);
  EXPECT_EQ(out.TraceCount(), 0u);
  EXPECT_DOUBLE_EQ(mechanism.LastSuppressionRatio(), 1.0);
}

TEST(Wait4Me, NonOverlappingTraceSuppressed) {
  Wait4MeConfig config;
  config.k = 2;
  const Wait4Me mechanism(config);
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset = ParallelTraces(2, 50.0);
  // A third trace 10 hours later: cannot be aligned.
  std::vector<model::Event> late;
  for (int i = 0; i <= 10; ++i) {
    late.push_back({projection.Unproject({i * 100.0, 0.0}),
                    static_cast<util::Timestamp>(36000 + i * 100)});
  }
  dataset.AddTraceForUser("late", std::move(late));
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(dataset, rng);
  EXPECT_EQ(out.TraceCount(), 2u);
  EXPECT_FALSE(out.FindUser("late").has_value() &&
               !out.TracesOfUser(*out.FindUser("late")).empty());
}

TEST(Wait4Me, OutputOnCommonTimeGrid) {
  Wait4MeConfig config;
  config.k = 2;
  config.grid_step_s = 100;
  const Wait4Me mechanism(config);
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(ParallelTraces(2, 50.0), rng);
  ASSERT_EQ(out.TraceCount(), 2u);
  for (const auto& trace : out.traces()) {
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].time - trace[i - 1].time, 100);
    }
  }
}

TEST(Wait4Me, EmptyDataset) {
  const Wait4Me mechanism;
  util::Rng rng(1);
  const model::Dataset out = mechanism.Apply(model::Dataset{}, rng);
  EXPECT_TRUE(out.empty());
}

TEST(Wait4Me, NameEncodesConfig) {
  Wait4MeConfig config;
  config.k = 5;
  config.delta_m = 250.0;
  EXPECT_EQ(Wait4Me(config).Name(), "wait4me[k=5,delta=250m]");
}

}  // namespace
}  // namespace mobipriv::mech
