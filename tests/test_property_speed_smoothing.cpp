// Parameterized property sweep of the paper's stage 1: for every spacing
// epsilon and every randomized world, the published traces must satisfy the
// constant-speed contract and defeat the POI extractor.
#include <gtest/gtest.h>

#include "attacks/poi_extraction.h"
#include "mechanisms/speed_smoothing.h"
#include "model/stats.h"
#include "synth/population.h"

namespace mobipriv::mech {
namespace {

class SpeedSmoothingProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {
 protected:
  model::Dataset MakeWorldDataset() const {
    synth::PopulationConfig config;
    config.agents = 4;
    config.days = 1;
    config.seed = std::get<1>(GetParam());
    const synth::SyntheticWorld world(config);
    return world.dataset().Clone();
  }
  SpeedSmoothing MakeMechanism() const {
    SpeedSmoothingConfig config;
    config.spacing_m = std::get<0>(GetParam());
    return SpeedSmoothing(config);
  }
};

TEST_P(SpeedSmoothingProperty, EqualDistanceBetweenConsecutivePoints) {
  const auto dataset = MakeWorldDataset();
  const auto mechanism = MakeMechanism();
  const double spacing = std::get<0>(GetParam());
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(dataset, rng);
  for (const auto& trace : published.traces()) {
    for (const double d : model::InterEventDistances(trace)) {
      // Haversine vs planar-chord conversion costs < 0.1 % at city scale.
      EXPECT_NEAR(d, spacing, spacing * 0.002 + 0.01);
    }
  }
}

TEST_P(SpeedSmoothingProperty, EqualDurationBetweenConsecutivePoints) {
  const auto dataset = MakeWorldDataset();
  const auto mechanism = MakeMechanism();
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(dataset, rng);
  for (const auto& trace : published.traces()) {
    const auto intervals = model::InterEventIntervals(trace);
    if (intervals.size() < 2) continue;
    for (const double dt : intervals) {
      EXPECT_NEAR(dt, intervals.front(), 1.5);  // integer-second rounding
    }
  }
}

TEST_P(SpeedSmoothingProperty, TimeSpanPreserved) {
  const auto dataset = MakeWorldDataset();
  const auto mechanism = MakeMechanism();
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(dataset, rng);
  // Each published trace's span matches some input trace's span exactly.
  for (const auto& trace : published.traces()) {
    bool found = false;
    for (const auto& input : dataset.traces()) {
      if (input.user() == trace.user() &&
          input.front().time == trace.front().time &&
          input.back().time == trace.back().time) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "published span not found in input";
  }
}

TEST_P(SpeedSmoothingProperty, NoExtractablePoisAtSufficientSpacing) {
  const double spacing = std::get<0>(GetParam());
  if (spacing < 50.0) {
    GTEST_SKIP() << "below the jitter scale, partial leakage is expected";
  }
  const auto dataset = MakeWorldDataset();
  const auto mechanism = MakeMechanism();
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(dataset, rng);
  const attacks::PoiExtractor extractor;
  const auto pois = extractor.Extract(published);
  // A handful of agents: demand at most one borderline artefact.
  EXPECT_LE(pois.size(), 1u) << "spacing " << spacing;
}

INSTANTIATE_TEST_SUITE_P(
    SpacingsAndWorlds, SpeedSmoothingProperty,
    ::testing::Combine(::testing::Values(25.0, 100.0, 250.0),
                       ::testing::Values(101ULL, 202ULL, 303ULL)));

}  // namespace
}  // namespace mobipriv::mech
