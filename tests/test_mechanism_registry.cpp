#include "mechanisms/registry.h"

#include <gtest/gtest.h>

#include "core/anonymizer.h"
#include "core/experiment.h"
#include "mechanisms/geo_indistinguishability.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "mechanisms/wait4me.h"
#include "util/spec.h"

namespace mobipriv {
namespace {

TEST(Spec, ParsesBareBase) {
  const auto spec = util::Spec::Parse("identity");
  EXPECT_EQ(spec.base(), "identity");
  EXPECT_TRUE(spec.entries().empty());
  EXPECT_EQ(spec.ToString(), "identity");
}

TEST(Spec, ParsesParamsAndFlags) {
  const auto spec = util::Spec::Parse("wait4me[k=4,delta=500m]");
  EXPECT_EQ(spec.base(), "wait4me");
  EXPECT_EQ(spec.IntOf("k", 0), 4);
  EXPECT_DOUBLE_EQ(spec.NumberOf("delta", 0.0), 500.0);  // unit stripped
  EXPECT_EQ(spec.ToString(), "wait4me[k=4,delta=500m]");

  const auto flags = util::Spec::Parse("ours[speed+mix]");
  EXPECT_TRUE(flags.HasFlag("speed+mix"));
}

TEST(Spec, RejectsMalformed) {
  EXPECT_THROW((void)util::Spec::Parse(""), util::SpecError);
  EXPECT_THROW((void)util::Spec::Parse("[eps=1]"), util::SpecError);
  EXPECT_THROW((void)util::Spec::Parse("geo_ind[eps=1"), util::SpecError);
  EXPECT_THROW((void)util::Spec::Parse("a[b=1,,c=2]"), util::SpecError);
  EXPECT_THROW((void)util::Spec::Parse("a[[x]]"), util::SpecError);
  EXPECT_THROW((void)util::Spec::Parse("a[=1]"), util::SpecError);
}

TEST(Spec, NumberErrors) {
  const auto spec = util::Spec::Parse("geo_ind[eps=abc]");
  EXPECT_THROW((void)spec.NumberOf("eps", 0.0), util::SpecError);
  EXPECT_DOUBLE_EQ(spec.NumberOf("absent", 7.0), 7.0);
}

// The registry's core contract: every Name() the library prints parses
// back into a mechanism printing the same Name().
TEST(MechanismRegistry, NameRoundTripsForWholeRoster) {
  for (const auto& mechanism : core::StandardRoster({0.001, 0.01, 0.1})) {
    const std::string name = mechanism->Name();
    const auto rebuilt = mech::CreateMechanism(name);
    EXPECT_EQ(rebuilt->Name(), name) << "spec: " << name;
  }
  // Stage mechanisms round-trip too.
  for (const char* name :
       {"speed_smoothing[eps=100m]", "mixzone[r=150m,w=600s]"}) {
    EXPECT_EQ(mech::CreateMechanism(name)->Name(), name);
  }
}

TEST(MechanismRegistry, ParsesParametersIntoConfigs) {
  const auto geo = mech::CreateMechanism("geo_ind[eps=0.05]");
  const auto* geo_ind =
      dynamic_cast<const mech::GeoIndistinguishability*>(geo.get());
  ASSERT_NE(geo_ind, nullptr);
  EXPECT_DOUBLE_EQ(geo_ind->config().epsilon, 0.05);

  const auto w4m = mech::CreateMechanism("wait4me[k=7,delta=250m]");
  const auto* wait4me = dynamic_cast<const mech::Wait4Me*>(w4m.get());
  ASSERT_NE(wait4me, nullptr);
  EXPECT_EQ(wait4me->config().k, 7u);
  EXPECT_DOUBLE_EQ(wait4me->config().delta_m, 250.0);

  const auto speed = mech::CreateMechanism("speed_smoothing[eps=42m]");
  const auto* smoothing =
      dynamic_cast<const mech::SpeedSmoothing*>(speed.get());
  ASSERT_NE(smoothing, nullptr);
  EXPECT_DOUBLE_EQ(smoothing->config().spacing_m, 42.0);
}

TEST(MechanismRegistry, OursStageSelection) {
  const auto full = mech::CreateMechanism("ours[speed+mix]");
  const auto* anonymizer = dynamic_cast<const core::Anonymizer*>(full.get());
  ASSERT_NE(anonymizer, nullptr);
  EXPECT_TRUE(anonymizer->config().enable_speed_smoothing);
  EXPECT_TRUE(anonymizer->config().enable_mixzones);

  const auto speed_only = mech::CreateMechanism("ours[speed]");
  const auto* speed =
      dynamic_cast<const core::Anonymizer*>(speed_only.get());
  ASSERT_NE(speed, nullptr);
  EXPECT_TRUE(speed->config().enable_speed_smoothing);
  EXPECT_FALSE(speed->config().enable_mixzones);
  EXPECT_EQ(speed_only->Name(), "ours[speed]");

  // Bare "ours" is the full pipeline; stage knobs pass through.
  const auto tuned = mech::CreateMechanism("ours[speed+mix,eps=50m,r=200m]");
  const auto* tuned_anon = dynamic_cast<const core::Anonymizer*>(tuned.get());
  ASSERT_NE(tuned_anon, nullptr);
  EXPECT_DOUBLE_EQ(tuned_anon->config().speed.spacing_m, 50.0);
  EXPECT_DOUBLE_EQ(tuned_anon->config().mixzone.zone_radius_m, 200.0);
}

TEST(MechanismRegistry, TunedOursNameIsInjectiveAndRoundTrips) {
  // The engine memoizes by Name(), so differently-tuned pipelines must
  // print different names — and each must parse back to itself.
  for (const char* name :
       {"ours[speed,eps=50m]", "ours[speed,eps=25m]",
        "ours[speed+mix,eps=50m,r=200m]", "ours[mix,w=300s,min_users=3]"}) {
    EXPECT_EQ(mech::CreateMechanism(name)->Name(), name);
  }
  EXPECT_NE(mech::CreateMechanism("ours[speed,eps=50m]")->Name(),
            mech::CreateMechanism("ours[speed,eps=25m]")->Name());
}

TEST(MechanismRegistry, RejectsUnknownBaseAndParams) {
  EXPECT_THROW((void)mech::CreateMechanism("nope"), util::SpecError);
  EXPECT_THROW((void)mech::CreateMechanism("geo_ind[epsilon=1]"),
               util::SpecError);
  EXPECT_THROW((void)mech::CreateMechanism("ours[turbo]"), util::SpecError);
  EXPECT_THROW((void)mech::CreateMechanism("identity[x=1]"),
               util::SpecError);
}

TEST(MechanismRegistry, ExtensionPoint) {
  mech::RegisterMechanism("test_identity",
                          [](const util::Spec&) {
                            return mech::CreateMechanism("identity");
                          });
  const auto bases = mech::RegisteredMechanismBases();
  EXPECT_NE(std::find(bases.begin(), bases.end(), "test_identity"),
            bases.end());
  EXPECT_EQ(mech::CreateMechanism("test_identity")->Name(), "identity");
}

}  // namespace
}  // namespace mobipriv
