#include "attacks/home_work.h"

#include <gtest/gtest.h>

#include "core/anonymizer.h"
#include "synth/population.h"
#include "util/rng.h"

namespace mobipriv::attacks {
namespace {

TEST(DailyWindowOverlap, SimpleDaytimeWindow) {
  // Window 09:00-17:00; interval 08:00-10:00 on day 0 -> 1 h overlap.
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(8 * 3600, 10 * 3600,
                                               9 * 3600, 17 * 3600),
            3600);
  // Fully inside.
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(10 * 3600, 12 * 3600,
                                               9 * 3600, 17 * 3600),
            7200);
  // Disjoint.
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(18 * 3600, 20 * 3600,
                                               9 * 3600, 17 * 3600),
            0);
}

TEST(DailyWindowOverlap, WrappingNightWindow) {
  // Window 21:00-06:00. Interval 22:00 day0 -> 07:00 day1 covers
  // 22:00-24:00 (2 h) + 00:00-06:00 (6 h) = 8 h.
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(
                22 * 3600, 24 * 3600 + 7 * 3600, 21 * 3600, 6 * 3600),
            8 * 3600);
  // Early morning only: 04:00-05:00 -> 1 h.
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(4 * 3600, 5 * 3600,
                                               21 * 3600, 6 * 3600),
            3600);
}

TEST(DailyWindowOverlap, MultiDayInterval) {
  // 48 h interval with a daily 8 h work window -> 16 h.
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(0, 2 * 86400, 9 * 3600,
                                               17 * 3600),
            16 * 3600);
}

TEST(DailyWindowOverlap, EmptyInterval) {
  EXPECT_EQ(HomeWorkAttack::DailyWindowOverlap(100, 100, 0, 86400), 0);
}

struct WorldFixture {
  WorldFixture() {
    synth::PopulationConfig config;
    config.agents = 6;
    config.days = 2;
    config.seed = 1234;
    world = std::make_unique<synth::SyntheticWorld>(config);
  }
  std::unique_ptr<synth::SyntheticWorld> world;
};

TEST(HomeWorkAttack, RecoversHomesFromRawData) {
  const WorldFixture f;
  const HomeWorkAttack attack;
  const auto frame = DatasetProjection(f.world->dataset());
  const auto guesses = attack.Infer(f.world->dataset(), frame);
  ASSERT_EQ(guesses.size(), 6u);
  std::size_t homes_found = 0;
  for (const auto& guess : guesses) {
    if (!guess.home.has_value()) continue;
    // Compare against the true home site.
    const auto& profile = f.world->profiles()[guess.user];
    const geo::Point2 truth = frame.Project(f.world->projection().Unproject(
        f.world->universe().site(profile.home).position));
    if (geo::Distance(*guess.home, truth) < 300.0) ++homes_found;
  }
  // The overnight dwell tails sit at home in every session: most homes leak.
  EXPECT_GE(homes_found, 4u);
}

TEST(HomeWorkAttack, RecoversWorkplacesFromRawData) {
  const WorldFixture f;
  const HomeWorkAttack attack;
  const auto frame = DatasetProjection(f.world->dataset());
  const auto guesses = attack.Infer(f.world->dataset(), frame);
  std::size_t works_found = 0;
  for (const auto& guess : guesses) {
    if (!guess.work.has_value()) continue;
    const auto& profile = f.world->profiles()[guess.user];
    const geo::Point2 truth = frame.Project(f.world->projection().Unproject(
        f.world->universe().site(profile.work).position));
    if (geo::Distance(*guess.work, truth) < 300.0) ++works_found;
  }
  EXPECT_GE(works_found, 4u);
}

TEST(HomeWorkAttack, DefeatedByThePipeline) {
  const WorldFixture f;
  const core::Anonymizer anonymizer;
  util::Rng rng(5);
  const model::Dataset published =
      anonymizer.Apply(f.world->dataset(), rng);
  const HomeWorkAttack attack;
  const auto frame = DatasetProjection(f.world->dataset());
  const auto guesses = attack.Infer(published, frame);
  std::size_t any_guess = 0;
  for (const auto& guess : guesses) {
    if (guess.home.has_value() || guess.work.has_value()) ++any_guess;
  }
  // Constant speed leaves no overnight/working-hour stays to label.
  EXPECT_EQ(any_guess, 0u);
}

}  // namespace
}  // namespace mobipriv::attacks
