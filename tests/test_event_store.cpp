// The columnar core's contract: EventStore <-> Dataset conversions are
// exact inverses, views over both layouts expose identical data, and every
// view-based kernel (metrics, attacks, mechanisms) reproduces its AoS
// counterpart bit for bit.
#include <gtest/gtest.h>

#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "mechanisms/gaussian_noise.h"
#include "mechanisms/speed_smoothing.h"
#include "metrics/coverage.h"
#include "metrics/kdelta.h"
#include "metrics/spatial_distortion.h"
#include "metrics/trajectory_stats.h"
#include "model/event_store.h"
#include "model/filters.h"
#include "model/views.h"
#include "synth/population.h"
#include "util/rng.h"

namespace mobipriv {
namespace {

model::Dataset SmallWorld() {
  synth::PopulationConfig config;
  config.agents = 8;
  config.days = 1;
  config.seed = 4242;
  return synth::SyntheticWorld(config).dataset();
}

void ExpectDatasetsIdentical(const model::Dataset& a,
                             const model::Dataset& b) {
  ASSERT_EQ(a.UserCount(), b.UserCount());
  for (model::UserId id = 0; id < a.UserCount(); ++id) {
    EXPECT_EQ(a.UserName(id), b.UserName(id));
  }
  ASSERT_EQ(a.TraceCount(), b.TraceCount());
  for (std::size_t t = 0; t < a.TraceCount(); ++t) {
    const model::Trace& ta = a.traces()[t];
    const model::Trace& tb = b.traces()[t];
    ASSERT_EQ(ta.user(), tb.user()) << "trace " << t;
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].time, tb[i].time);
      EXPECT_EQ(ta[i].position.lat, tb[i].position.lat);
      EXPECT_EQ(ta[i].position.lng, tb[i].position.lng);
    }
  }
}

TEST(EventStore, RoundTripsDatasetExactly) {
  const model::Dataset dataset = SmallWorld();
  const model::EventStore store = model::EventStore::FromDataset(dataset);
  EXPECT_EQ(store.TraceCount(), dataset.TraceCount());
  EXPECT_EQ(store.EventCount(), dataset.EventCount());
  EXPECT_EQ(store.UserCount(), dataset.UserCount());
  ExpectDatasetsIdentical(store.ToDataset(), dataset);
}

TEST(EventStore, ColumnsAreContiguousAndOrdered) {
  model::Dataset dataset;
  dataset.AddTraceForUser("a", {{{45.0, 4.0}, 100}, {{45.1, 4.1}, 200}});
  dataset.AddTraceForUser("b", {{{46.0, 5.0}, 150}});
  const model::EventStore store = model::EventStore::FromDataset(dataset);
  ASSERT_EQ(store.EventCount(), 3u);
  EXPECT_EQ(store.lat()[0], 45.0);
  EXPECT_EQ(store.lat()[1], 45.1);
  EXPECT_EQ(store.lat()[2], 46.0);
  EXPECT_EQ(store.lng()[2], 5.0);
  EXPECT_EQ(store.time()[0], 100);
  EXPECT_EQ(store.time()[2], 150);
  EXPECT_EQ(store.TraceUser(0), 0u);
  EXPECT_EQ(store.TraceUser(1), 1u);
  EXPECT_EQ(store.TraceSize(0), 2u);
}

TEST(EventStore, ViewsOverBothLayoutsAgree) {
  const model::Dataset dataset = SmallWorld();
  const model::EventStore store = model::EventStore::FromDataset(dataset);
  const model::DatasetView aos = model::DatasetView::Of(dataset);
  const model::DatasetView soa = store.View();
  ASSERT_EQ(aos.TraceCount(), soa.TraceCount());
  ASSERT_EQ(aos.EventCount(), soa.EventCount());
  for (std::size_t t = 0; t < aos.TraceCount(); ++t) {
    const model::TraceView& va = aos.trace(t);
    const model::TraceView& vs = soa.trace(t);
    ASSERT_EQ(va.size(), vs.size());
    EXPECT_EQ(va.user(), vs.user());
    for (std::size_t i = 0; i < va.size(); ++i) {
      EXPECT_EQ(va.lat(i), vs.lat(i));
      EXPECT_EQ(va.lng(i), vs.lng(i));
      EXPECT_EQ(va.time(i), vs.time(i));
    }
    EXPECT_EQ(va.LengthMeters(), vs.LengthMeters());
    EXPECT_EQ(va.Duration(), vs.Duration());
  }
}

TEST(TraceView, InterpolateMatchesTraceVersionBitwise) {
  util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    model::Trace trace;
    trace.set_user(0);
    util::Timestamp t = 1000;
    for (int i = 0; i < 50; ++i) {
      trace.Append(model::Event{
          {rng.Uniform(44.0, 46.0), rng.Uniform(3.0, 5.0)}, t});
      t += 1 + static_cast<util::Timestamp>(rng.NextBounded(300));
    }
    const model::TraceView view = model::TraceView::Of(trace);
    for (int probe = 0; probe < 200; ++probe) {
      const auto query = static_cast<util::Timestamp>(
          500 + rng.NextBounded(static_cast<std::uint64_t>(t)));
      const geo::LatLng a = model::InterpolateAt(trace, query);
      const geo::LatLng b = model::InterpolateAt(view, query);
      EXPECT_EQ(a.lat, b.lat) << "query " << query;
      EXPECT_EQ(a.lng, b.lng) << "query " << query;
    }
    // Exact fix times must hit exactly too.
    for (const auto& event : trace) {
      const geo::LatLng a = model::InterpolateAt(trace, event.time);
      const geo::LatLng b = model::InterpolateAt(view, event.time);
      EXPECT_EQ(a.lat, b.lat);
      EXPECT_EQ(a.lng, b.lng);
    }
  }
}

TEST(Views, MetricsOverStoreMatchAoSMetricsBitwise) {
  const model::Dataset original = SmallWorld();
  // A published variant: noised copy (deterministic).
  util::Rng rng(7);
  const mech::GaussianNoise noise;
  const model::Dataset published = noise.Apply(original, rng);

  const model::EventStore orig_store = model::EventStore::FromDataset(original);
  const model::EventStore pub_store = model::EventStore::FromDataset(published);

  const auto aos = metrics::MeasureDistortion(original, published);
  const auto soa =
      metrics::MeasureDistortion(orig_store.View(), pub_store.View());
  EXPECT_EQ(aos.ToString(), soa.ToString());
  EXPECT_EQ(aos.compared_traces, soa.compared_traces);
  EXPECT_EQ(aos.skipped_traces, soa.skipped_traces);
  EXPECT_EQ(aos.synchronized_m.mean, soa.synchronized_m.mean);
  EXPECT_EQ(aos.path_m.mean, soa.path_m.mean);

  const auto stats_aos = metrics::CompareTrajectoryStats(original, published);
  const auto stats_soa =
      metrics::CompareTrajectoryStats(orig_store.View(), pub_store.View());
  EXPECT_EQ(stats_aos.ToString(), stats_soa.ToString());
  EXPECT_EQ(stats_aos.trip_length_emd, stats_soa.trip_length_emd);
  EXPECT_EQ(stats_aos.gyration_relative_error,
            stats_soa.gyration_relative_error);

  const auto kd_aos = metrics::MeasureKDeltaAnonymity(published);
  const auto kd_soa = metrics::MeasureKDeltaAnonymity(pub_store.View());
  ASSERT_EQ(kd_aos.per_trace.size(), kd_soa.per_trace.size());
  for (std::size_t i = 0; i < kd_aos.per_trace.size(); ++i) {
    EXPECT_EQ(kd_aos.per_trace[i].k, kd_soa.per_trace[i].k);
  }

  EXPECT_EQ(metrics::CoverageJaccard(original, published),
            metrics::CoverageJaccard(orig_store.View(), pub_store.View()));
  EXPECT_EQ(metrics::CellFootprint(original),
            metrics::CellFootprint(orig_store.View()));
}

TEST(Views, AttacksOverStoreMatchAoSAttacksBitwise) {
  const model::Dataset dataset = SmallWorld();
  const model::EventStore store = model::EventStore::FromDataset(dataset);
  const geo::LocalProjection projection = attacks::DatasetProjection(dataset);

  const attacks::PoiExtractor extractor;
  const auto aos_pois = extractor.Extract(dataset, projection);
  const auto soa_pois = extractor.Extract(store.View(), projection);
  ASSERT_EQ(aos_pois.size(), soa_pois.size());
  for (std::size_t i = 0; i < aos_pois.size(); ++i) {
    EXPECT_EQ(aos_pois[i].user, soa_pois[i].user);
    EXPECT_EQ(aos_pois[i].centroid.x, soa_pois[i].centroid.x);
    EXPECT_EQ(aos_pois[i].centroid.y, soa_pois[i].centroid.y);
    EXPECT_EQ(aos_pois[i].visits, soa_pois[i].visits);
    EXPECT_EQ(aos_pois[i].total_dwell_s, soa_pois[i].total_dwell_s);
  }

  const attacks::ReidentificationAttack attack;
  const auto aos_profiles = attack.BuildProfiles(dataset, projection);
  const auto soa_profiles = attack.BuildProfiles(store.View(), projection);
  ASSERT_EQ(aos_profiles.size(), soa_profiles.size());
  const auto aos_links = attack.Attack(aos_profiles, dataset, projection);
  const auto soa_links = attack.Attack(soa_profiles, store.View(), projection);
  ASSERT_EQ(aos_links.size(), soa_links.size());
  for (std::size_t i = 0; i < aos_links.size(); ++i) {
    EXPECT_EQ(aos_links[i].true_user, soa_links[i].true_user);
    EXPECT_EQ(aos_links[i].predicted_user, soa_links[i].predicted_user);
    EXPECT_EQ(aos_links[i].linkable, soa_links[i].linkable);
    EXPECT_EQ(aos_links[i].distance, soa_links[i].distance);
  }
}

TEST(Views, MechanismApplyViewMatchesApply) {
  const model::Dataset dataset = SmallWorld();
  const model::EventStore store = model::EventStore::FromDataset(dataset);
  const mech::SpeedSmoothing mechanism;
  util::Rng rng_a(31337);
  util::Rng rng_b(31337);
  const model::Dataset via_dataset = mechanism.Apply(dataset, rng_a);
  const model::Dataset via_view = mechanism.ApplyView(store.View(), rng_b);
  ExpectDatasetsIdentical(via_dataset, via_view);
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
}

TEST(Views, MaterializeRoundTrips) {
  const model::Dataset dataset = SmallWorld();
  ExpectDatasetsIdentical(model::DatasetView::Of(dataset).Materialize(),
                          dataset);
}

}  // namespace
}  // namespace mobipriv
