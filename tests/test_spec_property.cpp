// Property/fuzz tests for the spec grammar (util/spec.h): randomized
// specs and chains round-trip (parse -> print -> parse is a fixed point),
// random garbage either parses or is rejected deterministically with
// stable error text, and the documented error messages are pinned.
#include "util/spec.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace mobipriv {
namespace {

using util::Spec;
using util::SpecChain;
using util::SpecError;

/// Deterministic generator: every run exercises the same cases.
struct Gen {
  std::mt19937_64 rng{20260808};

  std::size_t Index(std::size_t bound) {
    return static_cast<std::size_t>(rng() % bound);
  }

  std::string From(std::string_view charset, std::size_t min_len,
                   std::size_t max_len) {
    const std::size_t len = min_len + Index(max_len - min_len + 1);
    std::string out;
    for (std::size_t i = 0; i < len; ++i) {
      out += charset[Index(charset.size())];
    }
    return out;
  }

  /// base/key charset per the grammar comment: [A-Za-z0-9_+.-]+.
  std::string Ident() { return From("abcXYZ019_+.-", 1, 8); }
  /// Values: anything up to the next "," or "]"; no brackets (nested
  /// brackets are rejected). '=' and '|' are legal inside a value.
  std::string Value() { return From("abc019_.=|: -", 1, 8); }

  /// A canonical spec: ToString() output by construction.
  Spec RandomSpec() {
    Spec spec(Ident());
    const std::size_t entries = Index(4);
    for (std::size_t i = 0; i < entries; ++i) {
      if (Index(3) == 0) {
        spec.AddFlag(Ident());
      } else {
        spec.Add(Ident(), Value());
      }
    }
    return spec;
  }

  SpecChain RandomChain(std::size_t max_stages) {
    SpecChain chain;
    const std::size_t stages = 1 + Index(max_stages);
    for (std::size_t i = 0; i < stages; ++i) chain.Append(RandomSpec());
    return chain;
  }
};

TEST(SpecProperty, RandomCanonicalSpecsRoundTrip) {
  Gen gen;
  for (int i = 0; i < 2000; ++i) {
    const Spec spec = gen.RandomSpec();
    const std::string text = spec.ToString();
    const Spec reparsed = Spec::Parse(text);
    EXPECT_EQ(reparsed.ToString(), text);
    EXPECT_EQ(reparsed.base(), spec.base());
    ASSERT_EQ(reparsed.entries().size(), spec.entries().size()) << text;
    for (std::size_t e = 0; e < spec.entries().size(); ++e) {
      EXPECT_EQ(reparsed.entries()[e].key, spec.entries()[e].key) << text;
      EXPECT_EQ(reparsed.entries()[e].value, spec.entries()[e].value)
          << text;
      EXPECT_EQ(reparsed.entries()[e].has_value,
                spec.entries()[e].has_value)
          << text;
    }
  }
}

TEST(SpecProperty, RandomCanonicalChainsRoundTrip) {
  Gen gen;
  for (int i = 0; i < 2000; ++i) {
    const SpecChain chain = gen.RandomChain(4);
    const std::string text = chain.ToString();
    const SpecChain reparsed = SpecChain::Parse(text);
    EXPECT_EQ(reparsed.ToString(), text);
    EXPECT_EQ(reparsed.size(), chain.size()) << text;
  }
}

TEST(SpecProperty, ParsePrintParseIsAFixedPointOnAnyAcceptedInput) {
  // Non-canonical but accepted inputs ("a[]") may print differently ONCE;
  // after the first print the text must be a fixed point.
  Gen gen;
  const std::string charset = "ab1_+.-[],=| ";
  int accepted = 0;
  for (int i = 0; i < 8000; ++i) {
    const std::string text = gen.From(charset, 1, 12);
    std::string printed;
    try {
      printed = SpecChain::Parse(text).ToString();
    } catch (const SpecError&) {
      continue;
    }
    ++accepted;
    EXPECT_EQ(SpecChain::Parse(printed).ToString(), printed)
        << "input: " << text;
  }
  EXPECT_GT(accepted, 100);  // the generator must actually hit the grammar
}

TEST(SpecProperty, RejectsAreDeterministicWithStableText) {
  Gen gen;
  const std::string charset = "ab1[],=|";
  int rejected = 0;
  for (int i = 0; i < 8000; ++i) {
    const std::string text = gen.From(charset, 1, 10);
    std::string first_error;
    try {
      (void)SpecChain::Parse(text);
      continue;
    } catch (const SpecError& e) {
      first_error = e.what();
    }
    ++rejected;
    // Same input, same rejection, same message — every time.
    try {
      (void)SpecChain::Parse(text);
      ADD_FAILURE() << "accepted on re-parse: " << text;
    } catch (const SpecError& e) {
      EXPECT_EQ(std::string(e.what()), first_error) << text;
    }
  }
  EXPECT_GT(rejected, 100);
}

TEST(SpecProperty, PinnedErrorMessages) {
  const auto error_of = [](std::string_view text) -> std::string {
    try {
      (void)SpecChain::Parse(text);
    } catch (const SpecError& e) {
      return e.what();
    }
    return "<accepted>";
  };
  EXPECT_EQ(error_of(""), "malformed spec \"\": empty chain stage");
  EXPECT_EQ(error_of("[x=1]"),
            "malformed spec \"[x=1]\": empty base name");
  EXPECT_EQ(error_of("a[x=1"), "malformed spec \"a[x=1\": missing closing ]");
  EXPECT_EQ(error_of("a[x=1]z"),
            "malformed spec \"a[x=1]z\": missing closing ]");
  EXPECT_EQ(error_of("a[[x]]"), "malformed spec \"a[[x]]\": nested brackets");
  EXPECT_EQ(error_of("a[,x]"), "malformed spec \"a[,x]\": empty entry");
  EXPECT_EQ(error_of("a[=1]"), "malformed spec \"a[=1]\": empty key");
  EXPECT_EQ(error_of("a||b"), "malformed spec \"a||b\": empty chain stage");
  EXPECT_EQ(error_of("|a"), "malformed spec \"|a\": empty chain stage");
  EXPECT_EQ(error_of("a|"), "malformed spec \"a|\": empty chain stage");
}

TEST(SpecProperty, QuotingEdgeCases) {
  // '=' in a value: only the FIRST '=' splits key from value.
  const Spec eq = Spec::Parse("a[k=v=w]");
  EXPECT_EQ(eq.Get("k"), "v=w");
  EXPECT_EQ(eq.ToString(), "a[k=v=w]");

  // '|' inside brackets is a literal, not a stage separator.
  const SpecChain piped = SpecChain::Parse("a[x=1|2]");
  EXPECT_EQ(piped.size(), 1u);
  EXPECT_EQ(piped.stages()[0].Get("x"), "1|2");
  EXPECT_EQ(piped.ToString(), "a[x=1|2]");

  // ... and a chain around it still splits at the top level only.
  const SpecChain mixed = SpecChain::Parse("a[x=1|2]|b");
  EXPECT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed.stages()[1].base(), "b");

  // Empty bracket body canonicalizes to the bare base (one-way, then
  // fixed): "a[]" -> "a".
  EXPECT_EQ(SpecChain::Parse("a[]").ToString(), "a");
  EXPECT_EQ(SpecChain::Parse("a[]|b[]").ToString(), "a|b");

  // Unit suffixes survive verbatim (stripping is a read-time concern).
  const Spec unit = Spec::Parse("w4m[delta=500m,w=600s]");
  EXPECT_EQ(unit.ToString(), "w4m[delta=500m,w=600s]");
  EXPECT_DOUBLE_EQ(unit.NumberOf("delta", 0.0), 500.0);

  // Flag tokens with '+' (the "ours" stage-list idiom).
  const Spec flags = Spec::Parse("ours[speed+mix,eps=100m]");
  EXPECT_TRUE(flags.HasFlag("speed+mix"));
  EXPECT_EQ(flags.ToString(), "ours[speed+mix,eps=100m]");
}

TEST(SpecProperty, SplitTopLevelContract) {
  using util::SplitTopLevel;
  EXPECT_EQ(SplitTopLevel("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTopLevel("a[x|y]|b", '|'),
            (std::vector<std::string>{"a[x|y]", "b"}));
  EXPECT_EQ(SplitTopLevel("a||b", '|'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitTopLevel("", '|'), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitTopLevel("k[a,b],c", ','),
            (std::vector<std::string>{"k[a,b]", "c"}));
}

}  // namespace
}  // namespace mobipriv
