// Parameterized round-trip properties of the serialization layer: for any
// synthetic world, CSV write -> read reproduces the dataset up to the
// 6-decimal coordinate quantization (~0.11 m), and GeoJSON output stays
// structurally valid.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "model/geojson.h"
#include "model/io.h"
#include "synth/population.h"

namespace mobipriv::model {
namespace {

class IoRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Dataset MakeDataset() const {
    synth::PopulationConfig config;
    config.agents = 3;
    config.days = 1;
    config.seed = GetParam();
    return synth::SyntheticWorld(config).dataset().Clone();
  }
};

TEST_P(IoRoundTripProperty, CsvPreservesEverythingUpToQuantization) {
  const Dataset original = MakeDataset();
  std::ostringstream out;
  WriteCsv(original, out);
  std::istringstream in(out.str());
  const Dataset back = ReadCsv(in);

  EXPECT_EQ(back.UserCount(), original.UserCount());
  EXPECT_EQ(back.EventCount(), original.EventCount());
  // ReadCsv groups one trace per user; compare the pooled per-user event
  // sequences (sorted by time) instead of trace-by-trace.
  for (UserId user = 0; user < original.UserCount(); ++user) {
    const auto name = original.UserName(user);
    const auto back_user = back.FindUser(name);
    ASSERT_TRUE(back_user.has_value()) << name;
    std::vector<Event> expected;
    for (const auto idx : original.TracesOfUser(user)) {
      const auto& trace = original.traces()[idx];
      expected.insert(expected.end(), trace.begin(), trace.end());
    }
    std::stable_sort(expected.begin(), expected.end(), EventTimeLess{});
    std::vector<Event> actual;
    for (const auto idx : back.TracesOfUser(*back_user)) {
      const auto& trace = back.traces()[idx];
      actual.insert(actual.end(), trace.begin(), trace.end());
    }
    std::stable_sort(actual.begin(), actual.end(), EventTimeLess{});
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].time, expected[i].time);
      EXPECT_LT(geo::HaversineDistance(actual[i].position,
                                       expected[i].position),
                0.12)  // 6-decimal quantization bound
          << "user " << name << " event " << i;
    }
  }
}

TEST_P(IoRoundTripProperty, SecondRoundTripIsExact) {
  // After one quantization pass, further round trips are lossless.
  const Dataset original = MakeDataset();
  std::ostringstream first;
  WriteCsv(original, first);
  std::istringstream in1(first.str());
  const Dataset once = ReadCsv(in1);
  std::ostringstream second;
  WriteCsv(once, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST_P(IoRoundTripProperty, GeoJsonStaysBalancedOnAnyWorld) {
  const Dataset dataset = MakeDataset();
  GeoJsonOptions options;
  options.events_as_points = true;
  const std::string json = ToGeoJson(dataset, options);
  int braces = 0;
  int brackets = 0;
  int quotes = 0;
  bool escaped = false;
  bool in_string = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      ++quotes;
      continue;
    }
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_FALSE(in_string);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripProperty,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL));

}  // namespace
}  // namespace mobipriv::model
