#include "util/time_utils.h"

#include <gtest/gtest.h>

namespace mobipriv::util {
namespace {

TEST(ParseDateTime, KnownEpochValues) {
  EXPECT_EQ(ParseDateTime("1970-01-01 00:00:00"), 0);
  EXPECT_EQ(ParseDateTime("1970-01-01 00:00:01"), 1);
  EXPECT_EQ(ParseDateTime("1970-01-02 00:00:00"), 86400);
  // 2015-06-30 (the paper's arXiv date) — cross-checked externally.
  EXPECT_EQ(ParseDateTime("2015-06-30 00:00:00"), 1435622400);
}

TEST(ParseDateTime, TSeparatorAccepted) {
  EXPECT_EQ(ParseDateTime("1970-01-01T01:00:00"), 3600);
}

TEST(ParseDateTime, Invalid) {
  EXPECT_FALSE(ParseDateTime("").has_value());
  EXPECT_FALSE(ParseDateTime("2015-06-30").has_value());
  EXPECT_FALSE(ParseDateTime("2015/06/30 00:00:00").has_value());
  EXPECT_FALSE(ParseDateTime("2015-13-01 00:00:00").has_value());
  EXPECT_FALSE(ParseDateTime("2015-00-01 00:00:00").has_value());
  EXPECT_FALSE(ParseDateTime("2015-06-32 00:00:00").has_value());
  EXPECT_FALSE(ParseDateTime("2015-06-30 24:00:00").has_value());
  EXPECT_FALSE(ParseDateTime("2015-06-30 00:61:00").has_value());
  EXPECT_FALSE(ParseDateTime("2015-06-30 0a:00:00").has_value());
}

TEST(FormatDateTime, RoundTrip) {
  for (const char* text :
       {"1970-01-01 00:00:00", "2000-02-29 12:34:56", "2015-06-30 23:59:59",
        "1999-12-31 23:59:59", "2026-06-12 08:00:00"}) {
    const auto ts = ParseDateTime(text);
    ASSERT_TRUE(ts.has_value()) << text;
    EXPECT_EQ(FormatDateTime(*ts), text);
  }
}

TEST(FormatDateTime, LeapYearHandling) {
  const auto feb28 = ParseDateTime("2016-02-28 00:00:00");
  ASSERT_TRUE(feb28.has_value());
  EXPECT_EQ(FormatDateTime(*feb28 + kSecondsPerDay), "2016-02-29 00:00:00");
  EXPECT_EQ(FormatDateTime(*feb28 + 2 * kSecondsPerDay),
            "2016-03-01 00:00:00");
}

TEST(SecondsOfDay, Basic) {
  const auto ts = ParseDateTime("2015-06-30 01:02:03");
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(SecondsOfDay(*ts), 3723);
  EXPECT_EQ(SecondsOfDay(0), 0);
}

TEST(StartOfDay, Basic) {
  const auto ts = ParseDateTime("2015-06-30 13:45:00");
  const auto midnight = ParseDateTime("2015-06-30 00:00:00");
  ASSERT_TRUE(ts && midnight);
  EXPECT_EQ(StartOfDay(*ts), *midnight);
  EXPECT_EQ(StartOfDay(*midnight), *midnight);
}

TEST(FormatDuration, Ranges) {
  EXPECT_EQ(FormatDuration(45), "45s");
  EXPECT_EQ(FormatDuration(125), "2m05s");
  EXPECT_EQ(FormatDuration(7380), "2h03m");
  EXPECT_EQ(FormatDuration(0), "0s");
  EXPECT_EQ(FormatDuration(-45), "-45s");
}

}  // namespace
}  // namespace mobipriv::util
