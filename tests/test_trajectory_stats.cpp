#include "metrics/trajectory_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/projection.h"
#include "mechanisms/speed_smoothing.h"
#include "synth/population.h"

namespace mobipriv::metrics {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

model::Dataset TwoTripDataset() {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  // Trip 1: 1 km east. Trip 2: 3 km north.
  std::vector<model::Event> t1;
  std::vector<model::Event> t2;
  for (int i = 0; i <= 10; ++i) {
    t1.push_back({projection.Unproject({i * 100.0, 0.0}),
                  static_cast<util::Timestamp>(i * 60)});
    t2.push_back({projection.Unproject({0.0, i * 300.0}),
                  static_cast<util::Timestamp>(86400 + i * 60)});
  }
  dataset.AddTraceForUser("a", std::move(t1));
  dataset.AddTraceForUser("b", std::move(t2));
  return dataset;
}

TEST(TripLengths, Values) {
  const auto lengths = TripLengths(TwoTripDataset());
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_NEAR(lengths[0], 1000.0, 2.0);
  EXPECT_NEAR(lengths[1], 3000.0, 5.0);
}

TEST(TripLengths, MinLengthFilter) {
  EXPECT_EQ(TripLengths(TwoTripDataset(), 2000.0).size(), 1u);
  EXPECT_TRUE(TripLengths(model::Dataset{}).empty());
}

TEST(RadiusOfGyration, UniformLineIsKnown) {
  // n equally spaced points with spacing s have population variance
  // (n^2 - 1)/12 * s^2, so rg = s * sqrt((n^2 - 1)/12); n = 11, s = 100.
  const auto dataset = TwoTripDataset();
  const double rg = RadiusOfGyration(dataset, 0);
  const double expected = 100.0 * std::sqrt((121.0 - 1.0) / 12.0);
  EXPECT_NEAR(rg, expected, 3.0);
}

TEST(RadiusOfGyration, UnknownUserIsZero) {
  EXPECT_DOUBLE_EQ(RadiusOfGyration(TwoTripDataset(), 99), 0.0);
}

TEST(AllRadiiOfGyration, OnePerUser) {
  const auto radii = AllRadiiOfGyration(TwoTripDataset());
  ASSERT_EQ(radii.size(), 2u);
  EXPECT_GT(radii[1], radii[0]);  // 3 km trip has larger gyration
}

TEST(EarthMoversDistance, IdenticalIsZero) {
  const std::vector<double> samples{1.0, 2.0, 5.0, 9.0};
  EXPECT_NEAR(EarthMoversDistance(samples, samples), 0.0, 1e-9);
}

TEST(EarthMoversDistance, ConstantShift) {
  // Shifting a distribution by c gives EMD = c.
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{11.0, 12.0, 13.0, 14.0};
  EXPECT_NEAR(EarthMoversDistance(a, b), 10.0, 1e-9);
}

TEST(EarthMoversDistance, SymmetricAndDegenerate) {
  const std::vector<double> a{1.0, 5.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_NEAR(EarthMoversDistance(a, b), EarthMoversDistance(b, a), 1e-9);
  EXPECT_DOUBLE_EQ(EarthMoversDistance({}, {}), 0.0);
  EXPECT_TRUE(std::isinf(EarthMoversDistance(a, {})));
}

TEST(EarthMoversDistance, DifferentSampleCounts) {
  const std::vector<double> a{0.0, 10.0};
  const std::vector<double> b{0.0, 5.0, 10.0};
  const double d = EarthMoversDistance(a, b);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 5.0);
}

TEST(CompareTrajectoryStats, IdentityPreservesEverything) {
  const auto dataset = TwoTripDataset();
  const auto report = CompareTrajectoryStats(dataset, dataset);
  EXPECT_NEAR(report.trip_length_emd, 0.0, 1e-6);
  EXPECT_NEAR(report.gyration_relative_error, 0.0, 1e-9);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(CompareTrajectoryStats, SpeedSmoothingPreservesScaleStatistics) {
  // The paper's mechanism should approximately preserve trip lengths and
  // radii of gyration — geometry is kept, only jitter is removed.
  synth::PopulationConfig config;
  config.agents = 8;
  config.days = 1;
  config.seed = 42;
  const synth::SyntheticWorld world(config);
  const mech::SpeedSmoothing mechanism;
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(world.dataset(), rng);
  const auto report =
      CompareTrajectoryStats(world.dataset(), published);
  // Chord resampling strips dwell jitter (published trips get somewhat
  // shorter — that length was noise, not travel) and equalizes fix density
  // (raw gyration over-weights dwell clusters), so moderate shifts are
  // expected; the distributions must stay the same scale.
  EXPECT_LT(report.trip_length_emd,
            report.trip_length_original.mean * 0.35);
  EXPECT_LT(report.gyration_relative_error, 0.35);
  EXPECT_NEAR(report.gyration_published.mean,
              report.gyration_original.mean,
              report.gyration_original.mean * 0.4);
}

}  // namespace
}  // namespace mobipriv::metrics
