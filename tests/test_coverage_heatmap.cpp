// Tests for the identity-free utility metrics: coverage Jaccard and heatmap
// similarity.
#include <gtest/gtest.h>

#include "geo/projection.h"
#include "metrics/coverage.h"
#include "metrics/heatmap.h"

namespace mobipriv::metrics {
namespace {

constexpr geo::LatLng kOrigin{45.7640, 4.8357};

model::Dataset GridWalk(double offset_m, std::size_t points = 50) {
  const geo::LocalProjection projection(kOrigin);
  model::Dataset dataset;
  std::vector<model::Event> events;
  for (std::size_t i = 0; i < points; ++i) {
    events.push_back(
        {projection.Unproject({offset_m + i * 400.0, 0.0}),
         static_cast<util::Timestamp>(i * 60)});
  }
  dataset.AddTraceForUser("u", std::move(events));
  return dataset;
}

TEST(Coverage, IdenticalDatasetsScoreOne) {
  const auto dataset = GridWalk(0.0);
  EXPECT_DOUBLE_EQ(CoverageJaccard(dataset, dataset), 1.0);
}

TEST(Coverage, DisjointFootprintsScoreZero) {
  const auto a = GridWalk(0.0);
  const auto b = GridWalk(1e6);  // 1000 km east
  EXPECT_DOUBLE_EQ(CoverageJaccard(a, b), 0.0);
}

TEST(Coverage, EmptyDatasetsScoreOne) {
  EXPECT_DOUBLE_EQ(CoverageJaccard(model::Dataset{}, model::Dataset{}), 1.0);
}

TEST(Coverage, PartialOverlap) {
  const auto a = GridWalk(0.0, 50);
  const auto b = GridWalk(10000.0, 50);  // half the cells shared
  const double j = CoverageJaccard(a, b);
  EXPECT_GT(j, 0.2);
  EXPECT_LT(j, 0.8);
}

TEST(Coverage, FootprintCounts) {
  CoverageConfig config;
  config.cell_size_m = 200.0;
  // 50 points, 400 m apart, 200 m cells: each point its own cell.
  EXPECT_EQ(CellFootprint(GridWalk(0.0), config), 50u);
  EXPECT_EQ(CellFootprint(model::Dataset{}, config), 0u);
}

TEST(Coverage, CellSizeChangesGranularity) {
  const auto dataset = GridWalk(0.0);
  CoverageConfig coarse;
  coarse.cell_size_m = 10000.0;
  EXPECT_LT(CellFootprint(dataset, coarse), CellFootprint(dataset));
}

TEST(Heatmap, IdenticalDatasetsCosineOne) {
  const auto dataset = GridWalk(0.0);
  EXPECT_NEAR(HeatmapSimilarity(dataset, dataset), 1.0, 1e-12);
}

TEST(Heatmap, DisjointDatasetsCosineZero) {
  EXPECT_NEAR(HeatmapSimilarity(GridWalk(0.0), GridWalk(1e6)), 0.0, 1e-12);
}

TEST(Heatmap, CosineInsensitiveToUniformScaling) {
  // Duplicating every event scales all counts by 2: cosine unchanged.
  const geo::LocalProjection projection(kOrigin);
  const auto a = GridWalk(0.0);
  model::Dataset doubled;
  for (const auto& trace : a.traces()) {
    std::vector<model::Event> events(trace.begin(), trace.end());
    events.insert(events.end(), trace.begin(), trace.end());
    doubled.AddTraceForUser("u", std::move(events));
  }
  EXPECT_NEAR(HeatmapSimilarity(a, doubled), 1.0, 1e-12);
}

TEST(Heatmap, NormalizedL1Properties) {
  const geo::LocalProjection projection(kOrigin);
  const auto a = GridWalk(0.0);
  const auto b = GridWalk(1e6);
  const Heatmap ha(a, projection);
  const Heatmap hb(b, projection);
  EXPECT_DOUBLE_EQ(Heatmap::NormalizedL1(ha, ha), 0.0);
  EXPECT_NEAR(Heatmap::NormalizedL1(ha, hb), 2.0, 1e-12);  // disjoint: TV=1
}

TEST(Heatmap, CountsAccounting) {
  const geo::LocalProjection projection(kOrigin);
  const auto dataset = GridWalk(0.0, 30);
  const Heatmap h(dataset, projection);
  EXPECT_EQ(h.TotalCount(), 30u);
  EXPECT_GT(h.NonZeroCells(), 20u);
}

TEST(Heatmap, EmptyDatasets) {
  const geo::LocalProjection projection(kOrigin);
  const Heatmap empty(model::Dataset{}, projection);
  const Heatmap full(GridWalk(0.0), projection);
  EXPECT_DOUBLE_EQ(Heatmap::Cosine(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(Heatmap::Cosine(empty, full), 0.0);
  EXPECT_DOUBLE_EQ(Heatmap::NormalizedL1(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(Heatmap::NormalizedL1(empty, full), 2.0);
}

}  // namespace
}  // namespace mobipriv::metrics
