// Parameterized property sweep of the paper's stage 2 over zone radii and
// time windows: accounting, suppression and identity-space invariants must
// hold for any configuration.
#include <gtest/gtest.h>

#include <set>

#include "geo/projection.h"
#include "mechanisms/mixzone.h"
#include "synth/population.h"

namespace mobipriv::mech {
namespace {

class MixZoneProperty
    : public ::testing::TestWithParam<std::tuple<double, util::Timestamp>> {
 protected:
  static const model::Dataset& Input() {
    static const model::Dataset dataset = [] {
      synth::PopulationConfig config;
      config.agents = 8;
      config.days = 1;
      config.seed = 404;
      config.force_shared_hub = true;  // guarantee crossings
      const synth::SyntheticWorld world(config);
      return world.dataset().Clone();
    }();
    return dataset;
  }
  MixZone MakeMechanism() const {
    MixZoneConfig config;
    config.zone_radius_m = std::get<0>(GetParam());
    config.time_window_s = std::get<1>(GetParam());
    return MixZone(config);
  }
};

TEST_P(MixZoneProperty, EventConservation) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(1);
  MixZoneReport report;
  const model::Dataset output =
      mechanism.ApplyWithReport(Input(), rng, report);
  EXPECT_EQ(report.total_events, Input().EventCount());
  EXPECT_EQ(output.EventCount() + report.suppressed_events,
            report.total_events);
}

TEST_P(MixZoneProperty, PublishedEventsAreASubsetOfInputEvents) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(2);
  const model::Dataset output = mechanism.Apply(Input(), rng);
  // Locations/timestamps are never altered, only dropped or relabelled:
  // every published (time, position) pair exists in the input.
  std::set<std::pair<util::Timestamp, std::pair<double, double>>> input_set;
  for (const auto& trace : Input().traces()) {
    for (const auto& event : trace) {
      input_set.insert({event.time,
                        {event.position.lat, event.position.lng}});
    }
  }
  for (const auto& trace : output.traces()) {
    for (const auto& event : trace) {
      EXPECT_TRUE(input_set.contains(
          {event.time, {event.position.lat, event.position.lng}}));
    }
  }
}

TEST_P(MixZoneProperty, NoPublishedPointInsideAnyZone) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(3);
  MixZoneReport report;
  const model::Dataset output =
      mechanism.ApplyWithReport(Input(), rng, report);
  const geo::LocalProjection projection(Input().BoundingBox().Center());
  // Points inside a detected zone during its episodes are suppressed; a
  // published point may only be inside a zone disc outside episode times.
  // Conservatively verify the weaker, always-true invariant: the count of
  // published points strictly inside zone discs is below the input's count.
  std::size_t inside_in = 0;
  std::size_t inside_out = 0;
  const auto count_inside = [&](const model::Dataset& dataset,
                                std::size_t& counter) {
    for (const auto& trace : dataset.traces()) {
      for (const auto& event : trace) {
        for (const auto& zone : report.zones) {
          if (geo::Distance(projection.Project(event.position),
                            zone.center) <= zone.radius_m) {
            ++counter;
            break;
          }
        }
      }
    }
  };
  count_inside(Input(), inside_in);
  count_inside(output, inside_out);
  if (report.suppressed_events > 0) {
    EXPECT_LT(inside_out, inside_in);
  }
}

TEST_P(MixZoneProperty, AnonymitySetsMeetTheFloor) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(4);
  MixZoneReport report;
  (void)mechanism.ApplyWithReport(Input(), rng, report);
  for (const auto size : report.anonymity_set_sizes) {
    EXPECT_GE(size, 2u);
  }
  for (const auto& zone : report.zones) {
    EXPECT_GE(zone.max_anonymity_set, 2u);
    EXPECT_GT(zone.occurrences, 0u);
  }
}

TEST_P(MixZoneProperty, IdentitySpacePreserved) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(5);
  const model::Dataset output = mechanism.Apply(Input(), rng);
  EXPECT_EQ(output.UserCount(), Input().UserCount());
  for (const auto& trace : output.traces()) {
    EXPECT_LT(trace.user(), Input().UserCount());
  }
}

TEST_P(MixZoneProperty, SwapsNeverExceedOccurrences) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(6);
  MixZoneReport report;
  (void)mechanism.ApplyWithReport(Input(), rng, report);
  EXPECT_LE(report.swaps_applied, report.occurrences);
  EXPECT_LE(report.zones.size(), report.occurrences + 1);
}

INSTANTIATE_TEST_SUITE_P(
    RadiiAndWindows, MixZoneProperty,
    ::testing::Combine(::testing::Values(75.0, 150.0, 300.0),
                       ::testing::Values(util::Timestamp{300},
                                         util::Timestamp{900})));

}  // namespace
}  // namespace mobipriv::mech
