#include "metrics/reident_metrics.h"

#include <gtest/gtest.h>

namespace mobipriv::metrics {
namespace {

TEST(SummarizeReident, CountsAndAccuracies) {
  std::vector<attacks::LinkResult> results(5);
  results[0] = {.true_user = 1, .predicted_user = 1, .distance = 10, .linkable = true};
  results[1] = {.true_user = 2, .predicted_user = 3, .distance = 10, .linkable = true};
  results[2] = {.true_user = 3, .predicted_user = 3, .distance = 10, .linkable = true};
  results[3].linkable = false;
  results[4].linkable = false;
  const ReidentReport report = SummarizeReident(results);
  EXPECT_EQ(report.traces, 5u);
  EXPECT_EQ(report.linkable, 3u);
  EXPECT_EQ(report.correct, 2u);
  EXPECT_DOUBLE_EQ(report.accuracy_all, 0.4);
  EXPECT_NEAR(report.accuracy_linkable, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(SummarizeReident, EmptyResults) {
  const ReidentReport report = SummarizeReident({});
  EXPECT_EQ(report.traces, 0u);
  EXPECT_DOUBLE_EQ(report.accuracy_all, 0.0);
  EXPECT_DOUBLE_EQ(report.accuracy_linkable, 0.0);
}

TEST(SummarizeReident, AllUnlinkable) {
  std::vector<attacks::LinkResult> results(3);
  const ReidentReport report = SummarizeReident(results);
  EXPECT_EQ(report.linkable, 0u);
  EXPECT_DOUBLE_EQ(report.accuracy_all, 0.0);
}

}  // namespace
}  // namespace mobipriv::metrics
