// The sweep-config file format (`anonymize_csv --sweep`; docs/FORMAT.md,
// "Sweep config files"): field parsing, pinned line-numbered error
// messages, Describe() round-trip of the synth source, and an end-to-end
// scenario run straight from a config text.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "model/io.h"
#include "util/spec.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;

std::string ErrorOf(std::string_view text) {
  try {
    (void)core::ParseSweepConfig(text, "cfg");
  } catch (const util::SpecError& e) {
    return e.what();
  }
  return "<accepted>";
}

TEST(SweepConfig, ParsesEveryField) {
  const core::ScenarioSpec spec = core::ParseSweepConfig(
      "# a comment line\n"
      "source = synth:agents=12,days=2,seed=9\n"
      "\n"
      "mechanisms = geo_ind[eps=0.05]|downsampling[dt=120], cloaking\n"
      "mechanism = gaussian   # singular alias appends\n"
      "evaluators = spatial_distortion, certification\n"
      "evaluator = uncertainty\n"
      "seeds = 3, 5\n"
      "threads = 2\n"
      "workers = 4\n"
      "cache_dir = /tmp/sweep-cache\n"
      "cache_max_bytes = 1048576\n"
      "node_timeout_ms = 250.5\n",
      "cfg");

  EXPECT_EQ(spec.source.kind, core::DatasetSourceSpec::Kind::kSynthetic);
  EXPECT_EQ(spec.source.agents, 12u);
  EXPECT_EQ(spec.source.days, 2u);
  EXPECT_EQ(spec.source.world_seed, 9u);
  // The chain entry survives intact: list commas split at top level only.
  ASSERT_EQ(spec.mechanisms.size(), 3u);
  EXPECT_EQ(spec.mechanisms[0], "geo_ind[eps=0.05]|downsampling[dt=120]");
  EXPECT_EQ(spec.mechanisms[1], "cloaking");
  EXPECT_EQ(spec.mechanisms[2], "gaussian");
  ASSERT_EQ(spec.evaluators.size(), 3u);
  EXPECT_EQ(spec.evaluators[2], "uncertainty");
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.workers, 4u);
  EXPECT_EQ(spec.mechanism_cache_dir, "/tmp/sweep-cache");
  EXPECT_EQ(spec.mechanism_cache_max_bytes, 1048576u);
  EXPECT_DOUBLE_EQ(spec.node_timeout_ms, 250.5);
}

TEST(SweepConfig, BracketCommasStayInsideOneListEntry) {
  const core::ScenarioSpec spec = core::ParseSweepConfig(
      "mechanisms = wait4me[k=4,delta=500m], cloaking\n"
      "evaluators = kdelta[delta=500m,grid=60]\n",
      "cfg");
  ASSERT_EQ(spec.mechanisms.size(), 2u);
  EXPECT_EQ(spec.mechanisms[0], "wait4me[k=4,delta=500m]");
  ASSERT_EQ(spec.evaluators.size(), 1u);
  EXPECT_EQ(spec.evaluators[0], "kdelta[delta=500m,grid=60]");
}

TEST(SweepConfig, SeedsDefaultToOneWhenUnset) {
  const core::ScenarioSpec spec =
      core::ParseSweepConfig("mechanisms = identity\n", "cfg");
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1}));
}

TEST(SweepConfig, PinnedLineNumberedErrors) {
  EXPECT_EQ(ErrorOf("mechanisms = identity\nnot a key value line\n"),
            "sweep config cfg, line 2: expected key = value, got \"not a "
            "key value line\"");
  EXPECT_EQ(ErrorOf("= identity\n"), "sweep config cfg, line 1: empty key");
  EXPECT_EQ(ErrorOf("\n\nmechanisms =\n"),
            "sweep config cfg, line 3: empty value for key \"mechanisms\"");
  EXPECT_EQ(ErrorOf("mechanisms = identity,,cloaking\n"),
            "sweep config cfg, line 1: empty list entry");
  EXPECT_EQ(ErrorOf("seeds = 3, -1\n"),
            "sweep config cfg, line 1: seeds entry = \"-1\" is not a "
            "non-negative integer");
  EXPECT_EQ(ErrorOf("threads = many\n"),
            "sweep config cfg, line 1: threads = \"many\" is not a "
            "non-negative integer");
  EXPECT_EQ(ErrorOf("node_timeout_ms = -5\n"),
            "sweep config cfg, line 1: node_timeout_ms = \"-5\" is not a "
            "non-negative number");
  EXPECT_EQ(ErrorOf("mechanizms = identity\n"),
            "sweep config cfg, line 1: unknown key \"mechanizms\" (expected "
            "source, mechanisms, evaluators, seeds, threads, workers, "
            "cache_dir, cache_max_bytes, node_timeout_ms)");
  EXPECT_EQ(ErrorOf("source = synth:agents=lots\n"),
            "sweep config cfg, line 1: synth parameter \"agents=lots\" is "
            "not key=<non-negative integer>");
  EXPECT_EQ(ErrorOf("source = synth:population=5\n"),
            "sweep config cfg, line 1: unknown synth parameter "
            "\"population\" (expected agents, days, seed)");
}

TEST(SweepConfig, SynthSourceRoundTripsThroughDescribe) {
  // Describe() prints "synth:agents=A,days=D,seed=S" — feeding it back as
  // the source value must reproduce the same spec.
  core::DatasetSourceSpec source =
      core::DatasetSourceSpec::Synthetic(7, 2, 123);
  const core::ScenarioSpec reparsed = core::ParseSweepConfig(
      "source = " + source.Describe() + "\nmechanisms = identity\n", "cfg");
  EXPECT_EQ(reparsed.source.Describe(), source.Describe());
  EXPECT_EQ(reparsed.source.agents, 7u);
  EXPECT_EQ(reparsed.source.days, 2u);
  EXPECT_EQ(reparsed.source.world_seed, 123u);
}

TEST(SweepConfig, LoadThrowsIoErrorOnMissingFile) {
  const std::string path =
      (fs::temp_directory_path() / "mobipriv_no_such_sweep.cfg").string();
  fs::remove(path);
  try {
    (void)core::LoadSweepConfig(path);
    FAIL() << "expected IoError";
  } catch (const model::IoError& e) {
    EXPECT_EQ(std::string(e.what()), "cannot open sweep config: " + path);
  }
}

TEST(SweepConfig, LoadedConfigRunsEndToEndWithPrivacyColumn) {
  const fs::path path =
      fs::temp_directory_path() / "mobipriv_sweep_e2e.cfg";
  {
    std::ofstream out(path);
    out << "source = synth:agents=8,days=1,seed=42\n"
        << "mechanisms = geo_ind[eps=0.05]|downsampling[dt=120]|cloaking\n"
        << "evaluators = spatial_distortion, certification\n"
        << "seeds = 1\n"
        << "threads = 1\n";
  }
  core::ScenarioEngine engine(core::LoadSweepConfig(path.string()));
  const core::Report report = engine.Run();
  EXPECT_TRUE(report.AllOk());
  EXPECT_EQ(engine.stats().mechanism_nodes, 3u);
  // The report carries a privacy column.
  EXPECT_NE(report.ToCsv().find("cert_certified"), std::string::npos);
  fs::remove(path);
}

}  // namespace
}  // namespace mobipriv
