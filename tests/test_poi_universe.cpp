#include "synth/poi_universe.h"

#include <gtest/gtest.h>

namespace mobipriv::synth {
namespace {

struct Fixture {
  Fixture() : rng(3), network(MakeNetConfig(), rng) {}
  static RoadNetworkConfig MakeNetConfig() {
    RoadNetworkConfig config;
    config.width_m = 2000.0;
    config.height_m = 2000.0;
    config.block_size_m = 100.0;
    return config;
  }
  util::Rng rng;
  RoadNetwork network;
};

TEST(PoiUniverse, GeneratesRequestedCounts) {
  Fixture f;
  PoiUniverseConfig config;
  config.homes = 20;
  config.workplaces = 5;
  config.leisure = 4;
  config.shops = 3;
  config.transit_hubs = 2;
  const PoiUniverse universe(config, f.network, f.rng);
  EXPECT_EQ(universe.size(), 34u);
  EXPECT_EQ(universe.OfCategory(PoiCategory::kHome).size(), 20u);
  EXPECT_EQ(universe.OfCategory(PoiCategory::kWork).size(), 5u);
  EXPECT_EQ(universe.OfCategory(PoiCategory::kLeisure).size(), 4u);
  EXPECT_EQ(universe.OfCategory(PoiCategory::kShop).size(), 3u);
  EXPECT_EQ(universe.OfCategory(PoiCategory::kTransitHub).size(), 2u);
}

TEST(PoiUniverse, SitesSitOnRoadNodes) {
  Fixture f;
  const PoiUniverse universe(PoiUniverseConfig{}, f.network, f.rng);
  for (const auto& site : universe.sites()) {
    ASSERT_LT(site.node, f.network.NodeCount());
    EXPECT_EQ(site.position, f.network.NodePosition(site.node));
  }
}

TEST(PoiUniverse, IdsAreDense) {
  Fixture f;
  const PoiUniverse universe(PoiUniverseConfig{}, f.network, f.rng);
  for (PoiId i = 0; i < universe.size(); ++i) {
    EXPECT_EQ(universe.site(i).id, i);
  }
}

TEST(PoiUniverse, NearestFindsExactSite) {
  Fixture f;
  const PoiUniverse universe(PoiUniverseConfig{}, f.network, f.rng);
  const auto& site = universe.site(universe.size() / 2);
  EXPECT_EQ(universe.Nearest(site.position), site.id);
}

TEST(PoiUniverse, CategoryNames) {
  EXPECT_EQ(PoiCategoryName(PoiCategory::kHome), "home");
  EXPECT_EQ(PoiCategoryName(PoiCategory::kTransitHub), "transit_hub");
}

TEST(PoiUniverse, DeterministicGivenSeed) {
  Fixture f1;
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const PoiUniverse a(PoiUniverseConfig{}, f1.network, rng_a);
  const PoiUniverse b(PoiUniverseConfig{}, f1.network, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (PoiId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.site(i).node, b.site(i).node);
    EXPECT_EQ(a.site(i).category, b.site(i).category);
  }
}

}  // namespace
}  // namespace mobipriv::synth
