// Parameterized property sweep of the Wait4Me baseline over (k, delta):
// its construction must actually deliver the (k, delta) guarantee it
// claims, cross-validated with the independent measurement metric.
#include <gtest/gtest.h>

#include "geo/projection.h"
#include "mechanisms/wait4me.h"
#include "metrics/kdelta.h"
#include "synth/population.h"

namespace mobipriv::mech {
namespace {

/// Population whose session traces overlap in time (same commute window),
/// giving Wait4Me something to cluster.
const model::Dataset& Input() {
  static const model::Dataset dataset = [] {
    synth::PopulationConfig config;
    config.agents = 10;
    config.days = 1;
    config.seed = 31;
    config.schedule.work_start_stddev = 5 * util::kSecondsPerMinute;
    return synth::SyntheticWorld(config).dataset().Clone();
  }();
  return dataset;
}

class Wait4MeProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {
 protected:
  Wait4Me MakeMechanism() const {
    Wait4MeConfig config;
    config.k = std::get<0>(GetParam());
    config.delta_m = std::get<1>(GetParam());
    return Wait4Me(config);
  }
};

TEST_P(Wait4MeProperty, PublishedClustersAreMultiplesOfNothingBelowK) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(1);
  const model::Dataset published = mechanism.Apply(Input(), rng);
  // Published trace count is a sum of clusters of size exactly k.
  EXPECT_EQ(published.TraceCount() % std::get<0>(GetParam()), 0u);
  EXPECT_GE(mechanism.LastSuppressionRatio(), 0.0);
  EXPECT_LE(mechanism.LastSuppressionRatio(), 1.0);
}

TEST_P(Wait4MeProperty, MeasuredAnonymityMeetsConfiguredK) {
  const auto mechanism = MakeMechanism();
  util::Rng rng(2);
  const model::Dataset published = mechanism.Apply(Input(), rng);
  if (published.TraceCount() == 0) {
    GTEST_SKIP() << "everything suppressed at this (k, delta)";
  }
  metrics::KDeltaConfig measure;
  measure.delta_m = std::get<1>(GetParam());
  measure.grid_step_s = 60;
  const auto report = metrics::MeasureKDeltaAnonymity(published, measure);
  for (const auto& trace : report.per_trace) {
    EXPECT_GE(trace.k, std::get<0>(GetParam()))
        << "trace " << trace.trace_index;
  }
}

TEST_P(Wait4MeProperty, SuppressionGrowsWithK) {
  Wait4MeConfig small_config;
  small_config.k = 2;
  small_config.delta_m = std::get<1>(GetParam());
  const Wait4Me small_k(small_config);
  const auto mechanism = MakeMechanism();
  util::Rng rng_a(3);
  util::Rng rng_b(3);
  (void)small_k.Apply(Input(), rng_a);
  (void)mechanism.Apply(Input(), rng_b);
  if (std::get<0>(GetParam()) >= 2) {
    EXPECT_GE(mechanism.LastSuppressionRatio(),
              small_k.LastSuppressionRatio() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndDelta, Wait4MeProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values(300.0, 800.0)));

}  // namespace
}  // namespace mobipriv::mech
