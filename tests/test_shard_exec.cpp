// Fault-tolerant multi-process shard execution (core/shard_exec.h): the
// merged Report must be byte-identical to the in-process run at ANY
// worker count — including runs where workers are SIGKILLed mid-stage
// and recovered by retry — and retry exhaustion must degrade exactly the
// affected stage's rows with machine-independent error text. Worker-side
// fault points are armed through the MOBIPRIV_FAULTS environment (the
// supervisor passes its environment to every worker it spawns); setting
// the variable mid-test does NOT arm this process, only the workers.
#include "core/shard_exec.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scenario.h"
#include "core/worker_protocol.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"
#include "util/fault.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;
namespace fault = util::fault;

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 24;
    config.days = 1;
    config.seed = 99;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

/// Shards World() into `shards` under a fresh pid-unique directory.
std::string MakeShardDir(const std::string& name, std::size_t shards) {
  const fs::path dir = fs::temp_directory_path() /
                       (name + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  model::ShardedDataset::Partition(World(), shards).SaveShards(dir.string());
  return dir.string();
}

/// A grid the multi-process path accepts: single-stage per-trace
/// mechanisms, foldable evaluators. Canonical stage names (the fault
/// keys) are "gaussian[sigma=100m]", "geo_ind[eps=0.01]",
/// "cloaking[cell=250m]".
core::ScenarioSpec FoldableSpec() {
  core::ScenarioSpec spec;
  spec.mechanisms = {"gaussian", "geo_ind[eps=0.01]", "cloaking"};
  spec.evaluators = {"trajectory_stats", "range_queries[n=32]"};
  spec.seeds = {5, 9};
  return spec;
}

/// Sets MOBIPRIV_FAULTS for the scope (arms points in every worker the
/// supervisor spawns while it lives), restoring the previous value.
class ScopedWorkerFaults {
 public:
  explicit ScopedWorkerFaults(const std::string& spec) {
    const char* old = std::getenv("MOBIPRIV_FAULTS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv("MOBIPRIV_FAULTS", spec.c_str(), 1);
  }
  ~ScopedWorkerFaults() {
    if (had_) {
      ::setenv("MOBIPRIV_FAULTS", saved_.c_str(), 1);
    } else {
      ::unsetenv("MOBIPRIV_FAULTS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

/// Skips the test when the worker binary is not discoverable (platforms
/// without /proc/self/exe or builds without the target).
#define REQUIRE_WORKER_BINARY()                                        \
  do {                                                                 \
    if (core::DefaultWorkerBinary().empty()) {                         \
      GTEST_SKIP() << "mobipriv_worker binary not found next to the "  \
                      "test executable";                               \
    }                                                                  \
  } while (0)

class ShardExec : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(ShardExec, PartitionShardsIsContiguousAndBalanced) {
  // 10 shards over 3 workers: sizes differ by at most one, earlier
  // subsets take the remainder, indices stay contiguous ascending.
  const auto parts = core::PartitionShards(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 4u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  std::size_t next = 0;
  for (const auto& part : parts) {
    for (const std::size_t s : part) EXPECT_EQ(s, next++);
  }
  EXPECT_EQ(next, 10u);
  // More workers than shards: one subset per shard, never an empty one.
  EXPECT_EQ(core::PartitionShards(2, 8).size(), 2u);
  // workers = 0 clamps to 1.
  EXPECT_EQ(core::PartitionShards(5, 0).size(), 1u);
}

TEST_F(ShardExec, MergedReportByteIdenticalAcrossWorkerCounts) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_identical", 4);

  core::ScenarioSpec ref_spec = FoldableSpec();
  ref_spec.source = core::DatasetSourceSpec::ShardDir(dir);
  core::ScenarioEngine ref_engine(std::move(ref_spec));
  const std::string reference = ref_engine.Run().ToCsv();
  EXPECT_EQ(ref_engine.stats().workers_spawned, 0u);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    core::ScenarioSpec spec = FoldableSpec();
    spec.source = core::DatasetSourceSpec::ShardDir(dir);
    spec.workers = workers;
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    EXPECT_TRUE(report.AllOk()) << "workers=" << workers;
    EXPECT_EQ(report.ToCsv(), reference) << "workers=" << workers;
    EXPECT_EQ(engine.stats().streamed_shards, 4u) << "workers=" << workers;
    EXPECT_GE(engine.stats().workers_spawned, 1u) << "workers=" << workers;
    EXPECT_EQ(engine.stats().worker_failures, 0u) << "workers=" << workers;
  }
  fs::remove_all(dir);
}

TEST_F(ShardExec, WorkerCrashRecoversByRestart) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_crash", 4);

  core::ScenarioSpec ref_spec = FoldableSpec();
  ref_spec.source = core::DatasetSourceSpec::ShardDir(dir);
  core::ScenarioEngine ref_engine(std::move(ref_spec));
  const std::string reference = ref_engine.Run().ToCsv();

  // SIGKILL every worker on its first attempt (#0) at the gaussian
  // stage; the retry (#1) passes. The run must recover to the exact
  // in-process report — crash history is invisible in the output.
  ScopedWorkerFaults faults(
      "worker.apply=kill:9@1,key:gaussian[sigma=100m]#0");
  core::ScenarioSpec spec = FoldableSpec();
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.workers = 2;
  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  EXPECT_TRUE(report.AllOk());
  EXPECT_EQ(report.ToCsv(), reference);
  EXPECT_GE(engine.stats().worker_restarts, 1u);
  EXPECT_EQ(engine.stats().worker_failures, 0u);
  fs::remove_all(dir);
}

TEST_F(ShardExec, RetryExhaustionDegradesOnlyTheKilledStage) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_exhaust", 4);

  // Kill EVERY attempt of every gaussian request: retries exhaust and
  // both gaussian stage nodes (seeds 5 and 9) degrade to failed rows
  // with machine-independent text; their evaluator cells are skipped;
  // the other mechanisms complete normally — byte-identically at any
  // thread count.
  ScopedWorkerFaults faults("worker.apply=kill:9@1,key:gaussian*");
  std::string first_csv;
  for (const std::size_t threads : {1u, 4u}) {
    core::ScenarioSpec spec = FoldableSpec();
    spec.source = core::DatasetSourceSpec::ShardDir(dir);
    spec.workers = 2;
    spec.threads = threads;
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    EXPECT_FALSE(report.AllOk());
    const std::string csv = report.ToCsv();
    EXPECT_NE(
        csv.find("worker failed after 3 attempts: killed by signal 9"),
        std::string::npos);
    EXPECT_NE(csv.find("dependency failed: worker failed after 3 attempts"),
              std::string::npos);
    // Degradation is surgical: the non-gaussian mechanisms still have
    // only ok rows.
    for (const auto& row : report.rows()) {
      if (row.mechanism.find("gaussian") == std::string::npos) {
        EXPECT_EQ(row.error, "") << row.mechanism;
      }
    }
    EXPECT_GE(engine.stats().worker_failures, 1u) << "threads=" << threads;
    if (first_csv.empty()) {
      first_csv = csv;
    } else {
      EXPECT_EQ(csv, first_csv) << "degraded report not thread-invariant";
    }
  }
  fs::remove_all(dir);
}

TEST_F(ShardExec, TornResultIsRetriedAndRecovered) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_torn", 4);

  core::ScenarioSpec ref_spec = FoldableSpec();
  ref_spec.source = core::DatasetSourceSpec::ShardDir(dir);
  core::ScenarioEngine ref_engine(std::move(ref_spec));
  const std::string reference = ref_engine.Run().ToCsv();

  // Supervisor-side: the result-validation point is in THIS process, so
  // programmatic arming works. Fail one validation of a gaussian result
  // -> "result missing or torn" -> the request retries and recovers.
  fault::Config config;
  config.mode = fault::Mode::kFailTimes;
  config.times = 1;
  config.key_filter = "gaussian*";
  fault::Arm(fault::points::kSupervisorResultValidate, config);

  core::ScenarioSpec spec = FoldableSpec();
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.workers = 2;
  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  EXPECT_EQ(fault::TripCount(fault::points::kSupervisorResultValidate), 1u);
  EXPECT_TRUE(report.AllOk());
  EXPECT_EQ(report.ToCsv(), reference);
  EXPECT_GE(engine.stats().worker_restarts, 1u);
  EXPECT_EQ(engine.stats().worker_failures, 0u);
  fs::remove_all(dir);
}

TEST_F(ShardExec, DeadlineExpiryDegradesWithWatchdogText) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_deadline", 2);

  // Workers sleep 1200 ms inside every cloaking apply; the 250 ms
  // request deadline preempts them. Retries hit the same sleep, so the
  // stage exhausts and degrades with the watchdog's error text (the
  // same wording the in-process watchdog uses).
  ScopedWorkerFaults faults("worker.apply=delay:1200,key:cloaking*");
  core::ScenarioSpec spec;
  spec.mechanisms = {"gaussian", "cloaking"};
  spec.evaluators = {"trajectory_stats"};
  spec.seeds = {5};
  spec.source = core::DatasetSourceSpec::ShardDir(dir);
  spec.workers = 2;
  spec.node_timeout_ms = 250.0;
  core::ScenarioEngine engine(std::move(spec));
  const core::Report report = engine.Run();
  EXPECT_FALSE(report.AllOk());
  const std::string csv = report.ToCsv();
  EXPECT_NE(csv.find("node exceeded node_timeout (250 ms watchdog)"),
            std::string::npos);
  for (const auto& row : report.rows()) {
    if (row.mechanism.find("gaussian") != std::string::npos) {
      EXPECT_EQ(row.error, "");
    }
  }
  EXPECT_GE(engine.stats().worker_failures, 1u);
  fs::remove_all(dir);
}

TEST_F(ShardExec, WorkerReportedIoErrorIsPermanentAndDeterministic) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_ioerr", 4);

  // A worker-REPORTED failure (the result write throws IoError inside
  // the worker) is permanent — no retry — and its error text is
  // forwarded verbatim into the report, identically at any worker
  // count: every worker process trips its `once` budget on the same
  // first matching request.
  ScopedWorkerFaults faults("worker.result.write=once,key:cloaking*");
  std::string first_csv;
  for (const std::size_t workers : {1u, 2u}) {
    core::ScenarioSpec spec = FoldableSpec();
    spec.source = core::DatasetSourceSpec::ShardDir(dir);
    spec.workers = workers;
    core::ScenarioEngine engine(std::move(spec));
    const core::Report report = engine.Run();
    EXPECT_FALSE(report.AllOk());
    const std::string csv = report.ToCsv();
    EXPECT_NE(
        csv.find("injected fault (worker.result.write): "
                 "cloaking[cell=250m]#0"),
        std::string::npos);
    EXPECT_EQ(engine.stats().worker_restarts, 0u) << "workers=" << workers;
    EXPECT_GE(engine.stats().worker_failures, 1u) << "workers=" << workers;
    if (first_csv.empty()) {
      first_csv = csv;
    } else {
      EXPECT_EQ(csv, first_csv) << "degraded report not worker-invariant";
    }
  }
  fs::remove_all(dir);
}

TEST_F(ShardExec, QuarantineErrorsNameTheShardFile) {
  const std::string dir = MakeShardDir("mobipriv_exec_quarantine", 3);
  // Truncate shard 1 to a torn prefix: quarantine must record WHICH
  // file failed (leading file name) and WHY (IoError detail).
  {
    std::ofstream out(fs::path(dir) / "shard-00001.mpc",
                      std::ios::binary | std::ios::trunc);
    out << "torn";
  }
  model::ShardedDataset::OpenReport report;
  const model::ShardedDataset partial = model::ShardedDataset::OpenShards(
      dir, model::ShardedDataset::OpenPolicy::kSkipCorrupt, &report);
  ASSERT_EQ(report.skipped_shards.size(), 1u);
  EXPECT_EQ(report.skipped_shards[0], 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].rfind("shard-00001.mpc: ", 0), 0u)
      << report.errors[0];
  fs::remove_all(dir);
}

TEST_F(ShardExec, SupervisorDetectsHeartbeatLoss) {
  REQUIRE_WORKER_BINARY();
  const std::string dir = MakeShardDir("mobipriv_exec_heartbeat", 2);
  const auto plan = core::ProbeShardStream(dir);
  ASSERT_TRUE(plan.has_value());

  // Delay every apply by 1500 ms with a 250 ms heartbeat budget and one
  // attempt: the supervisor must detect the silent worker, kill it and
  // degrade the stage with a liveness error.
  ScopedWorkerFaults faults("worker.apply=delay:1500");
  core::ShardExecOptions options;
  options.worker_binary = core::DefaultWorkerBinary();
  options.workers = 1;
  options.heartbeat_timeout_ms = 250.0;
  options.max_attempts = 1;
  const std::string out_dir = core::MakeScratchDir();
  core::ShardExecStats stats;
  const std::vector<core::ShardStageOutcome> outcomes =
      core::RunShardStagesMultiProcess(
          *plan, {{"gaussian", "gaussian[sigma=100m]", "stage-0", 5}},
          out_dir, options, &stats);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("heartbeat lost"), std::string::npos)
      << outcomes[0].error;
  EXPECT_EQ(stats.worker_failures, 1u);
  fs::remove_all(out_dir);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mobipriv
