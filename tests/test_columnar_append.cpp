// ColumnarAppender contracts: bitwise equivalence with the one-shot
// writer at every flush-chunk size, manifest merging of independently
// written shard files, crash safety of the append commit path under fault
// injection, and the SaveShards fingerprint skip.
#include "model/columnar_append.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "model/columnar_file.h"
#include "model/event_store.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"
#include "util/fault.h"

namespace mobipriv {
namespace {

namespace fs = std::filesystem;
namespace fault = util::fault;

const model::Dataset& World() {
  static const synth::SyntheticWorld* world = [] {
    synth::PopulationConfig config;
    config.agents = 12;
    config.days = 1;
    config.seed = 7;
    return new synth::SyntheticWorld(config);
  }();
  return world->dataset();
}

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("mobipriv_append_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

struct DisarmGuard {
  ~DisarmGuard() { fault::DisarmAll(); }
};

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Appends every trace of `store` through an appender (names interned in
/// store order, so ids match) and finalizes.
void AppendStore(const model::EventStore& store, const std::string& path,
                 std::size_t flush_chunk_events) {
  model::ColumnarAppender::Options options;
  options.flush_chunk_events = flush_chunk_events;
  model::ColumnarAppender appender(path, options);
  for (const std::string& name : store.names()) {
    (void)appender.InternUser(name);
  }
  for (std::size_t i = 0; i < store.TraceCount(); ++i) {
    appender.AppendTrace(store.trace_table()[i].user, store.View(i));
  }
  appender.Finalize();
}

bool NoTempFiles(const fs::path& dir) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return false;
  }
  return true;
}

TEST(ColumnarAppend, BitwiseIdenticalToWriteColumnarAtAnyChunkSize) {
  ScratchDir scratch("bitwise");
  const model::EventStore store = model::EventStore::FromDataset(World());
  const fs::path reference = scratch.path / "reference.mpc";
  model::WriteColumnar(store, reference.string());
  const std::string expected = ReadFileBytes(reference);
  ASSERT_FALSE(expected.empty());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{1000}, std::size_t{1} << 16}) {
    const fs::path out = scratch.path / ("appended_" +
                                         std::to_string(chunk) + ".mpc");
    AppendStore(store, out.string(), chunk);
    EXPECT_EQ(ReadFileBytes(out), expected) << "chunk=" << chunk;
  }
  EXPECT_TRUE(NoTempFiles(scratch.path));
}

TEST(ColumnarAppend, EmptyAppenderMatchesEmptyStore) {
  ScratchDir scratch("empty");
  const model::EventStore store;
  const fs::path reference = scratch.path / "reference.mpc";
  model::WriteColumnar(store, reference.string());
  const fs::path out = scratch.path / "appended.mpc";
  AppendStore(store, out.string(), 1);
  EXPECT_EQ(ReadFileBytes(out), ReadFileBytes(reference));
}

TEST(ColumnarAppend, MergedManifestRoundTripsThroughOpenShards) {
  ScratchDir scratch("merge");
  constexpr std::size_t kShards = 3;
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(World(), kShards);

  // Write each shard independently — the multi-writer ingestion shape —
  // then stitch the directory together with a merged manifest.
  for (std::size_t s = 0; s < kShards; ++s) {
    AppendStore(model::EventStore::FromDataset(partition.shard(s)),
                model::ShardDataPath(scratch.path.string(), s), 64);
  }
  model::MergeShardManifests(scratch.path.string(), kShards);

  const model::ShardedDataset opened =
      model::ShardedDataset::OpenShards(scratch.path.string());
  ASSERT_EQ(opened.ShardCount(), kShards);
  EXPECT_EQ(opened.TraceCount(), partition.TraceCount());
  EXPECT_EQ(opened.EventCount(), partition.EventCount());

  // A merged manifest records no origin order, so Merge() concatenates in
  // (shard, local index) order; every trace must come back bit-exact,
  // under its original external user name.
  const model::Dataset merged = opened.Merge();
  std::size_t m = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const model::Dataset& shard = partition.shard(s);
    for (const model::Trace& want : shard.traces()) {
      ASSERT_LT(m, merged.TraceCount());
      const model::Trace& got = merged.traces()[m++];
      EXPECT_EQ(merged.UserName(got.user()), shard.UserName(want.user()));
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t e = 0; e < want.size(); ++e) {
        EXPECT_EQ(got[e], want[e]);
      }
    }
  }
  EXPECT_EQ(m, merged.TraceCount());
}

TEST(ColumnarAppend, TornFinalizeLeavesDestinationIntact) {
  DisarmGuard guard;
  ScratchDir scratch("torn");
  const model::EventStore store = model::EventStore::FromDataset(World());
  const fs::path out = scratch.path / "x.mpc";

  // Publish a healthy file first; the torn re-append must not touch it.
  AppendStore(store, out.string(), 128);
  const std::string healthy = ReadFileBytes(out);

  for (const std::string_view point : {fault::points::kColumnarWriteOpen,
                                       fault::points::kColumnarWriteShort,
                                       fault::points::kColumnarWriteCommit}) {
    SCOPED_TRACE(std::string(point));
    fault::Config config;
    if (point == fault::points::kColumnarWriteShort) {
      config.mode = fault::Mode::kShortIo;
      config.bytes = 64;
    }
    fault::Arm(point, config);
    EXPECT_THROW(AppendStore(store, out.string(), 128), model::IoError);
    fault::DisarmAll();
    EXPECT_EQ(ReadFileBytes(out), healthy) << "destination was disturbed";
    EXPECT_TRUE(NoTempFiles(scratch.path)) << "spill or temp file leaked";
  }
}

TEST(ColumnarAppend, AbortDropsEveryTemporary) {
  ScratchDir scratch("abort");
  const model::EventStore store = model::EventStore::FromDataset(World());
  const fs::path out = scratch.path / "x.mpc";
  {
    model::ColumnarAppender::Options options;
    options.flush_chunk_events = 16;  // force spills
    model::ColumnarAppender appender(out.string(), options);
    for (const std::string& name : store.names()) {
      (void)appender.InternUser(name);
    }
    for (std::size_t i = 0; i < store.TraceCount(); ++i) {
      appender.AppendTrace(store.trace_table()[i].user, store.View(i));
    }
    appender.Abort();
  }
  EXPECT_FALSE(fs::exists(out));
  EXPECT_TRUE(fs::is_empty(scratch.path));
}

TEST(ColumnarAppend, SaveShardsSkipsUnchangedShards) {
  ScratchDir scratch("skip");
  constexpr std::size_t kShards = 4;
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(World(), kShards);

  model::ShardedDataset::SaveStats first;
  partition.SaveShards(scratch.path.string(), &first);
  EXPECT_EQ(first.shards_written, kShards);
  EXPECT_EQ(first.shards_skipped, 0u);

  // Identical content: the fingerprints match, nothing is republished.
  model::ShardedDataset::SaveStats second;
  partition.SaveShards(scratch.path.string(), &second);
  EXPECT_EQ(second.shards_written, 0u);
  EXPECT_EQ(second.shards_skipped, kShards);

  // The directory still opens and merges back exactly.
  const model::Dataset merged =
      model::ShardedDataset::OpenShards(scratch.path.string()).Merge();
  EXPECT_EQ(merged.TraceCount(), World().TraceCount());
  EXPECT_EQ(merged.EventCount(), World().EventCount());
}

}  // namespace
}  // namespace mobipriv
