#include "core/experiment.h"

#include <gtest/gtest.h>

namespace mobipriv::core {
namespace {

TEST(Table, AlignedRendering) {
  Table table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer-name"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
  // All data lines have the same width (alignment).
  std::size_t line_start = 0;
  std::vector<std::size_t> lengths;
  for (std::size_t i = 0; i <= rendered.size(); ++i) {
    if (i == rendered.size() || rendered[i] == '\n') {
      if (i > line_start) lengths.push_back(i - line_start);
      line_start = i + 1;
    }
  }
  ASSERT_GE(lengths.size(), 4u);
  EXPECT_EQ(lengths[0], lengths[2]);
  EXPECT_EQ(lengths[2], lengths[3]);
}

TEST(Table, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.AddRow({"only-one"});
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv, "a,b,c\nonly-one,,\n");
}

TEST(Table, ToCsvQuotesRfc4180) {
  Table table({"mechanism", "note"});
  // Mechanism spec strings contain commas; quotes and newlines must
  // survive a round trip through any CSV reader too.
  table.AddRow({"geo_ind[eps=0.001,0.01]", "plain"});
  table.AddRow({"say \"hi\"", "line\nbreak"});
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv,
            "mechanism,note\n"
            "\"geo_ind[eps=0.001,0.01]\",plain\n"
            "\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(TimeMs, MeasuresSomething) {
  const double ms = TimeMs([] {
    // Unsigned: the sum wraps (sum of 0..99999 overflows 32 bits), and
    // signed wrap-around is UB the sanitizer job rightly rejects.
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 100000; ++i) sink += i;
  });
  EXPECT_GE(ms, 0.0);
  EXPECT_LT(ms, 10000.0);
}

TEST(StandardRoster, ContainsExpectedMechanisms) {
  const auto roster = StandardRoster({0.01});
  // identity + ours x3 + geo_ind x1 + w4m + cloaking + gaussian + downsample.
  EXPECT_EQ(roster.size(), 9u);
  std::vector<std::string> names;
  for (const auto& mechanism : roster) names.push_back(mechanism->Name());
  EXPECT_EQ(names.front(), "identity");
  bool has_full = false;
  bool has_geo = false;
  for (const auto& name : names) {
    if (name == "ours[speed+mix]") has_full = true;
    if (name.starts_with("geo_ind")) has_geo = true;
  }
  EXPECT_TRUE(has_full);
  EXPECT_TRUE(has_geo);
}

TEST(StandardRoster, EpsilonSweepSize) {
  EXPECT_EQ(StandardRoster({0.001, 0.01, 0.1}).size(), 11u);
}

TEST(StandardRoster, IsACannedSpecList) {
  // The roster is now spec strings over the mechanism registry; the
  // instances are exactly what the specs name.
  const auto specs = StandardRosterSpecs({0.01});
  const auto roster = StandardRoster({0.01});
  ASSERT_EQ(specs.size(), roster.size());
  EXPECT_EQ(specs.front(), "identity");
  EXPECT_EQ(specs[1], "ours[speed+mix]");
}

}  // namespace
}  // namespace mobipriv::core
