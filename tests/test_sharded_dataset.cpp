// Sharding contracts: stable user->shard assignment, exact Partition/Merge
// round trips at any shard count, and worker-count-invariant shard-wise
// pipeline runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/anonymizer.h"
#include "core/experiment.h"
#include "mechanisms/identity.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "synth/population.h"
#include "util/thread_pool.h"

namespace mobipriv {
namespace {

model::Dataset TestWorld() {
  synth::PopulationConfig config;
  config.agents = 10;
  config.days = 2;
  config.seed = 321;
  return synth::SyntheticWorld(config).dataset();
}

void ExpectDatasetsIdentical(const model::Dataset& a,
                             const model::Dataset& b) {
  ASSERT_EQ(a.UserCount(), b.UserCount());
  for (model::UserId id = 0; id < a.UserCount(); ++id) {
    EXPECT_EQ(a.UserName(id), b.UserName(id));
  }
  ASSERT_EQ(a.TraceCount(), b.TraceCount());
  for (std::size_t t = 0; t < a.TraceCount(); ++t) {
    const model::Trace& ta = a.traces()[t];
    const model::Trace& tb = b.traces()[t];
    ASSERT_EQ(ta.user(), tb.user()) << "trace " << t;
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].time, tb[i].time);
      EXPECT_EQ(ta[i].position.lat, tb[i].position.lat);
      EXPECT_EQ(ta[i].position.lng, tb[i].position.lng);
    }
  }
}

TEST(ShardOfUser, StableAndInRange) {
  for (const std::size_t shards : {1u, 2u, 3u, 8u, 64u}) {
    for (const char* name : {"alice", "bob", "000", "user42", ""}) {
      const std::size_t s = model::ShardedDataset::ShardOfUser(name, shards);
      EXPECT_LT(s, shards);
      // Pure function: same inputs, same shard, every time.
      EXPECT_EQ(s, model::ShardedDataset::ShardOfUser(name, shards));
    }
  }
  // Single shard is always shard 0.
  EXPECT_EQ(model::ShardedDataset::ShardOfUser("anyone", 1), 0u);
}

TEST(ShardOfUser, SpreadsUsersAcrossShards) {
  // Not a statistical test — just: 100 users on 8 shards must not collapse
  // onto one shard.
  std::vector<std::size_t> counts(8, 0);
  for (int u = 0; u < 100; ++u) {
    ++counts[model::ShardedDataset::ShardOfUser("user" + std::to_string(u),
                                                counts.size())];
  }
  std::size_t used = 0;
  for (const std::size_t c : counts) used += c > 0 ? 1 : 0;
  EXPECT_GE(used, 6u);
}

TEST(ShardedDataset, PartitionMergeRoundTripsAtAnyShardCount) {
  const model::Dataset dataset = TestWorld();
  for (const std::size_t shards : {1u, 3u, 8u, 16u}) {
    const auto sharded = model::ShardedDataset::Partition(dataset, shards);
    EXPECT_EQ(sharded.ShardCount(), shards);
    EXPECT_EQ(sharded.TraceCount(), dataset.TraceCount());
    EXPECT_EQ(sharded.EventCount(), dataset.EventCount());
    EXPECT_EQ(sharded.UserCount(), dataset.UserCount());
    ExpectDatasetsIdentical(sharded.Merge(), dataset);
  }
}

TEST(ShardedDataset, AllTracesOfAUserLandInOneShard) {
  const model::Dataset dataset = TestWorld();
  const auto sharded = model::ShardedDataset::Partition(dataset, 4);
  for (model::UserId id = 0; id < dataset.UserCount(); ++id) {
    const std::string name = dataset.UserName(id);
    std::size_t shards_holding = 0;
    for (std::size_t s = 0; s < sharded.ShardCount(); ++s) {
      const auto local = sharded.shard(s).FindUser(name);
      if (!local.has_value()) continue;
      ++shards_holding;
      EXPECT_EQ(s, model::ShardedDataset::ShardOfUser(name, 4));
    }
    EXPECT_EQ(shards_holding, 1u) << name;
  }
}

TEST(ShardedDataset, ApplyShardedIsWorkerCountInvariant) {
  const model::Dataset dataset = TestWorld();
  const auto sharded = model::ShardedDataset::Partition(dataset, 3);
  const core::Anonymizer anonymizer;

  util::Rng serial_rng(2015);
  model::ShardedDataset serial_out;
  std::vector<core::PipelineReport> serial_reports;
  {
    const util::ScopedParallelism one(1);
    serial_out = anonymizer.ApplySharded(sharded, serial_rng, &serial_reports);
  }
  util::Rng parallel_rng(2015);
  model::ShardedDataset parallel_out;
  std::vector<core::PipelineReport> parallel_reports;
  {
    const util::ScopedParallelism eight(8);
    parallel_out =
        anonymizer.ApplySharded(sharded, parallel_rng, &parallel_reports);
  }
  EXPECT_EQ(serial_rng.NextU64(), parallel_rng.NextU64());
  ASSERT_EQ(serial_reports.size(), parallel_reports.size());
  for (std::size_t s = 0; s < serial_reports.size(); ++s) {
    EXPECT_EQ(serial_reports[s].ToString(), parallel_reports[s].ToString());
  }
  ExpectDatasetsIdentical(serial_out.Merge(), parallel_out.Merge());
}

TEST(ShardedDataset, IdentityMechanismShardwisePreservesEverything) {
  const model::Dataset dataset = TestWorld();
  const auto sharded = model::ShardedDataset::Partition(dataset, 5);
  util::Rng rng(1);
  const mech::Identity identity;
  const auto out = core::ApplyMechanismSharded(identity, sharded, rng);
  EXPECT_EQ(out.ShardCount(), sharded.ShardCount());
  EXPECT_EQ(out.EventCount(), dataset.EventCount());
  EXPECT_EQ(out.TraceCount(), dataset.TraceCount());
  // Identity keeps every shard's contents; the merged dataset holds the
  // same users and events (trace order is shard-order after a rebuild).
  const model::Dataset merged = out.Merge();
  EXPECT_EQ(merged.UserCount(), dataset.UserCount());
  EXPECT_EQ(merged.EventCount(), dataset.EventCount());
}

TEST(ShardedDataset, EmptyDatasetPartitions) {
  const model::Dataset empty;
  const auto sharded = model::ShardedDataset::Partition(empty, 4);
  EXPECT_EQ(sharded.TraceCount(), 0u);
  EXPECT_TRUE(sharded.Merge().empty());
}

// ---- Persisted shard directories (SaveShards / OpenShards) ------------------

TEST(ShardPersistence, SaveOpenMergeReproducesTheOriginalExactly) {
  namespace fs = std::filesystem;
  const model::Dataset world = TestWorld();
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(world, 3);
  const std::string dir =
      (fs::path(testing::TempDir()) / "shards_roundtrip").string();
  partition.SaveShards(dir);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest.mpm"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "shard-00000.mpc"));

  const model::ShardedDataset reopened =
      model::ShardedDataset::OpenShards(dir);
  ASSERT_EQ(reopened.ShardCount(), partition.ShardCount());
  EXPECT_EQ(reopened.UserCount(), partition.UserCount());
  for (std::size_t s = 0; s < partition.ShardCount(); ++s) {
    ExpectDatasetsIdentical(partition.shard(s), reopened.shard(s));
  }
  // The recorded original trace order survives the disk round trip, so
  // the merge is the *exact* input, not a shard-order concatenation.
  ExpectDatasetsIdentical(world, reopened.Merge());
}

TEST(ShardPersistence, PartialOpenLoadsOnlyOwnedShards) {
  namespace fs = std::filesystem;
  const model::Dataset world = TestWorld();
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(world, 4);
  const std::string dir =
      (fs::path(testing::TempDir()) / "shards_partial").string();
  partition.SaveShards(dir);

  const model::ShardedDataset mine =
      model::ShardedDataset::OpenShards(dir, {2});
  ASSERT_EQ(mine.ShardCount(), 4u);
  ExpectDatasetsIdentical(partition.shard(2), mine.shard(2));
  EXPECT_TRUE(mine.shard(0).empty());
  EXPECT_TRUE(mine.shard(1).empty());
  EXPECT_TRUE(mine.shard(3).empty());
  // Global name table still complete: local ids resolve to global names.
  EXPECT_EQ(mine.UserCount(), partition.UserCount());
  // Out-of-range shard index is a clean error.
  EXPECT_THROW(model::ShardedDataset::OpenShards(dir, {9}), model::IoError);
}

TEST(ShardPersistence, RebuiltShardsPersistWithoutOriginOrder) {
  namespace fs = std::filesystem;
  const model::Dataset world = TestWorld();
  model::ShardedDataset partition = model::ShardedDataset::Partition(world, 3);
  // Touching a shard invalidates the recorded order (same rule as Merge).
  partition.mutable_shard(0) = partition.shard(0).Clone();
  const std::string dir =
      (fs::path(testing::TempDir()) / "shards_rebuilt").string();
  partition.SaveShards(dir);
  const model::ShardedDataset reopened =
      model::ShardedDataset::OpenShards(dir);
  ExpectDatasetsIdentical(partition.Merge(), reopened.Merge());
}

TEST(ShardPersistence, CorruptManifestAndMissingShardAreCleanErrors) {
  namespace fs = std::filesystem;
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(TestWorld(), 2);
  const std::string dir =
      (fs::path(testing::TempDir()) / "shards_corrupt").string();
  partition.SaveShards(dir);

  // Flip one payload byte in the manifest: checksum mismatch.
  const fs::path manifest = fs::path(dir) / "manifest.mpm";
  {
    std::fstream f(manifest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(50);
    char c;
    f.seekg(50);
    f.get(c);
    c ^= 1;
    f.seekp(50);
    f.put(c);
  }
  EXPECT_THROW(model::ShardedDataset::OpenShards(dir), model::IoError);

  // Restore the manifest, remove a shard file instead.
  partition.SaveShards(dir);
  fs::remove(fs::path(dir) / "shard-00001.mpc");
  EXPECT_THROW(model::ShardedDataset::OpenShards(dir), model::IoError);
  // ... but a partial open of the surviving shard still works.
  const model::ShardedDataset survivor =
      model::ShardedDataset::OpenShards(dir, {0});
  ExpectDatasetsIdentical(partition.shard(0), survivor.shard(0));
}

TEST(ShardPersistence, ReadShardManifestExposesMetadataWithoutShardLoads) {
  namespace fs = std::filesystem;
  const model::Dataset world = TestWorld();
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(world, 3);
  const std::string dir =
      (fs::path(testing::TempDir()) / "shards_manifest_api").string();
  partition.SaveShards(dir);

  const model::ShardManifest manifest = model::ReadShardManifest(dir);
  EXPECT_EQ(manifest.shard_count, 3u);
  EXPECT_EQ(manifest.global_names.size(), world.UserCount());
  ASSERT_TRUE(manifest.has_origin());
  std::size_t total = 0;
  for (const auto& o : manifest.origin) total += o.size();
  EXPECT_EQ(total, world.TraceCount());

  // ShardDataPath names the files SaveShards wrote.
  EXPECT_TRUE(fs::exists(model::ShardDataPath(dir, 0)));
  EXPECT_TRUE(fs::exists(model::ShardDataPath(dir, 2)));
  EXPECT_TRUE(model::ShardDataPath(dir, 1).ends_with("shard-00001.mpc"));
}

TEST(ShardPersistence, OpenShardsErrorPaths) {
  namespace fs = std::filesystem;
  const model::Dataset world = TestWorld();
  const model::ShardedDataset partition =
      model::ShardedDataset::Partition(world, 3);
  const std::string dir =
      (fs::path(testing::TempDir()) / "shards_error_paths").string();
  partition.SaveShards(dir);

  // Opening a shard subset that doesn't exist: clean IoError, no crash.
  EXPECT_THROW((void)model::ShardedDataset::OpenShards(dir, {7}),
               model::IoError);
  EXPECT_THROW((void)model::ShardedDataset::OpenShards(dir, {0, 3}),
               model::IoError);

  // Manifest/shard contents mismatch: replace one shard file with a valid
  // .mpc holding a different trace count — the recorded origin table no
  // longer matches and the open must fail loudly.
  model::Dataset tiny;
  tiny.AddTraceForUser("intruder",
                       {{{45.0, 4.0}, 100}, {{45.001, 4.001}, 160}});
  model::WriteColumnar(model::EventStore::FromDataset(tiny),
                       model::ShardDataPath(dir, 0));
  EXPECT_THROW((void)model::ShardedDataset::OpenShards(dir),
               model::IoError);

  // A directory with no manifest at all.
  const std::string empty_dir =
      (fs::path(testing::TempDir()) / "shards_no_manifest").string();
  fs::create_directories(empty_dir);
  EXPECT_THROW((void)model::ShardedDataset::OpenShards(empty_dir),
               model::IoError);
  EXPECT_THROW((void)model::ReadShardManifest(empty_dir), model::IoError);
}

}  // namespace
}  // namespace mobipriv
