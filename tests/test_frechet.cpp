#include "metrics/frechet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/projection.h"

namespace mobipriv::metrics {
namespace {

TEST(DiscreteFrechet, IdenticalPathsZero) {
  const std::vector<geo::Point2> path{{0.0, 0.0}, {10.0, 0.0}, {20.0, 5.0}};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(path, path), 0.0);
}

TEST(DiscreteFrechet, ParallelLinesEqualOffset) {
  const std::vector<geo::Point2> a{{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
  const std::vector<geo::Point2> b{{0.0, 3.0}, {10.0, 3.0}, {20.0, 3.0}};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b), 3.0);
}

TEST(DiscreteFrechet, SymmetricInArguments) {
  const std::vector<geo::Point2> a{{0.0, 0.0}, {10.0, 0.0}, {20.0, 8.0}};
  const std::vector<geo::Point2> b{{1.0, 2.0}, {9.0, -1.0}};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b), DiscreteFrechet(b, a));
}

TEST(DiscreteFrechet, OrderMattersUnlikeHausdorff) {
  // Same point sets, opposite directions: Fréchet is large, Hausdorff 0.
  const std::vector<geo::Point2> forward{{0.0, 0.0}, {10.0, 0.0},
                                         {20.0, 0.0}};
  const std::vector<geo::Point2> backward{{20.0, 0.0}, {10.0, 0.0},
                                          {0.0, 0.0}};
  EXPECT_GE(DiscreteFrechet(forward, backward), 20.0);
}

TEST(DiscreteFrechet, SinglePointVsPath) {
  const std::vector<geo::Point2> point{{0.0, 0.0}};
  const std::vector<geo::Point2> path{{0.0, 0.0}, {30.0, 40.0}};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(point, path), 50.0);
}

TEST(DiscreteFrechet, EmptyCases) {
  const std::vector<geo::Point2> empty;
  const std::vector<geo::Point2> path{{0.0, 0.0}};
  EXPECT_DOUBLE_EQ(DiscreteFrechet(empty, empty), 0.0);
  EXPECT_TRUE(std::isinf(DiscreteFrechet(empty, path)));
}

TEST(DiscreteFrechet, BoundsHausdorff) {
  // Fréchet >= max point-to-path distance.
  const std::vector<geo::Point2> a{{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
  const std::vector<geo::Point2> b{{0.0, 1.0}, {10.0, 7.0}, {20.0, 2.0}};
  EXPECT_GE(DiscreteFrechet(a, b), 7.0);
}

TEST(DiscreteFrechet, TraceOverloadProjectsAndDecimates) {
  constexpr geo::LatLng kOrigin{45.7640, 4.8357};
  const geo::LocalProjection projection(kOrigin);
  model::Trace a(0, {});
  model::Trace b(0, {});
  for (int i = 0; i <= 1000; ++i) {
    a.Append({projection.Unproject({i * 10.0, 0.0}),
              static_cast<util::Timestamp>(i)});
    b.Append({projection.Unproject({i * 10.0, 120.0}),
              static_cast<util::Timestamp>(i)});
  }
  const double d = DiscreteFrechet(a, b, /*max_points=*/128);
  EXPECT_NEAR(d, 120.0, 2.0);
}

TEST(DiscreteFrechet, TraceOverloadEmpty) {
  const model::Trace empty;
  model::Trace one(0, {{{45.0, 4.0}, 1}});
  EXPECT_DOUBLE_EQ(DiscreteFrechet(empty, empty), 0.0);
  EXPECT_TRUE(std::isinf(DiscreteFrechet(empty, one)));
}

}  // namespace
}  // namespace mobipriv::metrics
